package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// startTraced configures the instance with sampling on (every transaction)
// and the given fragment-ring bound, then runs a small mixed workload.
func startTraced(t *testing.T, ts *httptest.Server, ring, transactions int) {
	t.Helper()
	body := fmt.Sprintf(`{
		"name": "traced",
		"sites": ["S1","S2","S3"],
		"items": {"x": 10, "y": 20},
		"protocols": {"RCP":"qc","CCP":"2pl","ACP":"2pc"},
		"network": {"base_latency_us": 0},
		"timeouts_ms": {"op":1000,"vote":1000,"ack":500,"lock":300,"orphan_resolve":50},
		"trace_sample_rate": 1,
		"trace_ring": %d,
		"workload": {"transactions": %d, "mpl": 2, "ops_per_tx": 2, "read_fraction": 0.3, "retries": 3}
	}`, ring, transactions)
	if resp, out := post(t, ts.URL+"/NSRunnerlet", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("NSRunnerlet: %d %v", resp.StatusCode, out)
	}
	if resp, out := post(t, ts.URL+"/WLGlet/run", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("WLGlet/run: %d %v", resp.StatusCode, out)
	} else if out["committed"].(float64) == 0 {
		t.Fatal("nothing committed")
	}
}

// sampleLine matches one Prometheus text-format sample (0.0.4): a metric
// name, an optional label set, and a float value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+$`)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// No instance yet: the scrape surface answers 409, not garbage.
	if resp, _ := get(t, ts.URL+"/metrics"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("metrics before configure = %d, want 409", resp.StatusCode)
	}

	startTraced(t, ts, 1024, 20)
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want text exposition 0.0.4", ct)
	}

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}

	for _, family := range []string{
		"rainbow_tx_began_total", "rainbow_tx_committed_total",
		"rainbow_wal_flushes_total", "rainbow_pipeline_submitted_total",
		"rainbow_trace_sampled_total", "rainbow_trace_fragments_total",
		"rainbow_tx_latency_seconds_bucket", "rainbow_stage_latency_seconds_bucket",
		"rainbow_net_messages_total", "rainbow_net_bytes_total",
		"rainbow_net_sent_bytes_total", "rainbow_net_body_codec_total",
		`rainbow_net_codec{codec="binary"}`, `rainbow_net_codec{codec="gob"}`,
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("metrics missing family %s", family)
		}
	}

	// Histogram buckets are cumulative: within one label set the counts must
	// be nondecreasing and the +Inf bucket must equal _count.
	counts := make(map[string][]float64) // label set -> bucket counts in order
	infs := make(map[string]float64)
	finals := make(map[string]float64)
	bucketRe := regexp.MustCompile(`^rainbow_tx_latency_seconds_bucket\{(.*),le="([^"]+)"\} ([0-9.eE+-]+)$`)
	countRe := regexp.MustCompile(`^rainbow_tx_latency_seconds_count\{(.*)\} ([0-9.eE+-]+)$`)
	for _, line := range strings.Split(string(body), "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseFloat(m[3], 64)
			if m[2] == "+Inf" {
				infs[m[1]] = v
			} else {
				counts[m[1]] = append(counts[m[1]], v)
			}
		} else if m := countRe.FindStringSubmatch(line); m != nil {
			finals[m[1]], _ = strconv.ParseFloat(m[2], 64)
		}
	}
	if len(infs) == 0 {
		t.Fatal("no tx latency histogram buckets rendered")
	}
	for labels, seq := range counts {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Errorf("%s: bucket counts not cumulative: %v", labels, seq)
			}
		}
		if len(seq) > 0 && infs[labels] < seq[len(seq)-1] {
			t.Errorf("%s: +Inf bucket %v below last bucket %v", labels, infs[labels], seq[len(seq)-1])
		}
		if infs[labels] != finals[labels] {
			t.Errorf("%s: +Inf bucket %v != _count %v", labels, infs[labels], finals[labels])
		}
	}

	// Sampling at rate 1 means the trace counters moved.
	if !regexp.MustCompile(`rainbow_trace_sampled_total\{site="S[123]"\} [1-9]`).Match(body) {
		t.Errorf("no site reports sampled traces:\n%s", body)
	}
}

func TestTracesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	startTraced(t, ts, 1024, 20)

	resp, body := get(t, ts.URL+"/site/S1/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces: %d", resp.StatusCode)
	}
	var out struct {
		Site       string  `json:"site"`
		SampleRate float64 `json:"sample_rate"`
		Ring       int     `json:"ring"`
		Count      int     `json:"count"`
		Traces     []struct {
			ID    uint64 `json:"id"`
			Spans []struct {
				Stage string `json:"stage"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("traces body: %v\n%s", err, body)
	}
	if out.Site != "S1" || out.SampleRate != 1 || out.Ring != 1024 {
		t.Errorf("traces header = site=%s rate=%v ring=%d", out.Site, out.SampleRate, out.Ring)
	}
	if out.Count == 0 || len(out.Traces) != out.Count {
		t.Fatalf("count = %d, traces = %d", out.Count, len(out.Traces))
	}
	spans := 0
	for _, tr := range out.Traces {
		if tr.ID == 0 {
			t.Error("retained fragment with zero trace ID")
		}
		spans += len(tr.Spans)
	}
	if spans == 0 {
		t.Error("no fragment carries any spans")
	}

	if resp, _ := get(t, ts.URL+"/site/ZZ/traces"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown site = %d, want 404", resp.StatusCode)
	}
}

func TestTracesQueryFilters(t *testing.T) {
	_, ts := newTestServer(t)
	startTraced(t, ts, 1024, 20)

	type traceOut struct {
		Count  int `json:"count"`
		Traces []struct {
			Tx struct {
				Site string `json:"Site"`
				Seq  uint64 `json:"Seq"`
			} `json:"tx"`
		} `json:"traces"`
	}
	fetch := func(query string) traceOut {
		t.Helper()
		resp, body := get(t, ts.URL+"/site/S1/traces"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traces%s: %d", query, resp.StatusCode)
		}
		var out traceOut
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("traces%s body: %v", query, err)
		}
		return out
	}

	all := fetch("")
	if all.Count == 0 {
		t.Fatal("no fragments to filter")
	}

	// tx: filtering by one retained transaction returns only its fragments,
	// and at least one.
	want := fmt.Sprintf("%s:%d", all.Traces[0].Tx.Site, all.Traces[0].Tx.Seq)
	byTx := fetch("?tx=" + want)
	if byTx.Count == 0 || byTx.Count > all.Count {
		t.Fatalf("tx filter kept %d of %d fragments", byTx.Count, all.Count)
	}
	for _, tr := range byTx.Traces {
		if got := fmt.Sprintf("%s:%d", tr.Tx.Site, tr.Tx.Seq); got != want {
			t.Errorf("tx filter leaked fragment for %s (want %s)", got, want)
		}
	}
	if nohit := fetch("?tx=ZZ:999999"); nohit.Count != 0 {
		t.Errorf("unknown tx matched %d fragments", nohit.Count)
	}

	// min_ms: zero keeps everything, an absurd threshold keeps nothing.
	if out := fetch("?min_ms=0"); out.Count != all.Count {
		t.Errorf("min_ms=0 kept %d of %d", out.Count, all.Count)
	}
	if out := fetch("?min_ms=3600000"); out.Count != 0 {
		t.Errorf("min_ms=1h kept %d fragments", out.Count)
	}

	// limit: truncates to the newest N; larger-than-count is a no-op.
	if out := fetch("?limit=1"); out.Count != 1 {
		t.Errorf("limit=1 returned %d fragments", out.Count)
	}
	if out := fetch("?limit=1000000"); out.Count != all.Count {
		t.Errorf("limit beyond count returned %d of %d", out.Count, all.Count)
	}

	// Malformed parameters are a 400, not a silent full dump.
	for _, q := range []string{"?min_ms=abc", "?min_ms=-1", "?limit=x", "?limit=-2"} {
		if resp, _ := get(t, ts.URL+"/site/S1/traces"+q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("traces%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestTracesUnsampledStaysEmpty(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts) // default config: sampling off
	if resp, out := post(t, ts.URL+"/WLGlet/run", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("WLGlet/run: %d %v", resp.StatusCode, out)
	}
	_, body := get(t, ts.URL+"/site/S1/traces")
	var out struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 {
		t.Errorf("unsampled instance retained %d fragments", out.Count)
	}
}

func TestTracesRingEviction(t *testing.T) {
	_, ts := newTestServer(t)
	startTraced(t, ts, 8, 40)
	evicted := false
	for _, id := range []string{"S1", "S2", "S3"} {
		_, body := get(t, ts.URL+"/site/"+id+"/traces")
		var out struct {
			Count int `json:"count"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Count > 8 {
			t.Errorf("site %s retains %d fragments, ring bound is 8", id, out.Count)
		}
	}
	_, metrics := get(t, ts.URL+"/metrics")
	if regexp.MustCompile(`rainbow_trace_evicted_total\{site="S[123]"\} [1-9]`).Match(metrics) {
		evicted = true
	}
	if !evicted {
		t.Error("40 sampled transactions on an 8-slot ring evicted nothing")
	}
}

func TestProfilingEndpointsGated(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	if resp, _ := get(t, ts.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}

	s2 := NewServer()
	s2.EnableProfiling()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	if resp, body := get(t, ts2.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d", resp.StatusCode)
	} else if !bytes.Contains(body, []byte("profiles")) {
		t.Errorf("pprof index body: %s", body)
	}
	if resp, body := get(t, ts2.URL+"/debug/vars"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("memstats")) {
		t.Errorf("expvar = %d %s", resp.StatusCode, body[:min(len(body), 80)])
	}
}
