// Package httpapi implements Rainbow's Web middle tier over net/http: one
// handler per servlet of the original system (paper §2). The handlers
// manage a Rainbow instance hosted by the "Rainbow home host" process
// (cmd/rainbow-home) and bridge external clients — the role the Java
// applet + ServletRunner pair played:
//
//	POST /NSRunnerlet   — start a Rainbow instance from an experiment config
//	GET  /NSlet         — fetch the catalog (name-server metadata)
//	GET  /SiteRunnerlet — list sites and their liveness
//	GET  /Sitelet       — one site's statistics and store snapshot
//	POST /WLGlet/run    — run a simulated workload, returning its result
//	POST /WLGlet/manual — compose and submit one manual transaction
//	GET  /PMlet         — the aggregated statistics report (JSON)
//	GET  /PMlet/render  — the Figure-5 output panel as text
//	POST /Faultlet      — inject a crash / recovery / partition / heal
//	POST /Resetlet      — reset the statistics window
//
// Beyond the servlet surface, the durability pipeline is exposed REST-style:
//
//	POST /site/{id}/checkpoint — trigger a manual checkpoint on one site
//	POST /catalog              — install a new catalog version at runtime
//	                             (epoch-stamped, live-reconfigures sites)
//
// and /Sitelet carries a "durability" section (snapshot counts, replay
// horizon, dirty-shard gauge, decision-table size, retained WAL volume,
// catalog epoch / reconfiguration count).
//
// POST /catalog takes the same experiment-config JSON as /NSRunnerlet. A
// nonzero "epoch" field is a compare-and-set token: the update is rejected
// with 409 when it does not match the name server's current epoch, so
// concurrent administrators cannot silently clobber each other. The site
// set is fixed for the instance's lifetime.
package httpapi

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/wlg"
)

// Server hosts one Rainbow instance behind the servlet endpoints.
type Server struct {
	profiling bool

	mu       sync.Mutex
	instance *core.Instance
	exp      config.Experiment
}

// NewServer returns a server with no instance configured yet.
func NewServer() *Server { return &Server{} }

// EnableProfiling mounts net/http/pprof and expvar under /debug on the next
// Handler call (rainbow-home -pprof). Off by default.
func (s *Server) EnableProfiling() { s.profiling = true }

// Close shuts down the hosted instance.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.instance != nil {
		s.instance.Close()
		s.instance = nil
	}
}

// Handler returns the servlet mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /NSRunnerlet", s.handleNSRunner)
	mux.HandleFunc("GET /NSlet", s.handleNS)
	mux.HandleFunc("GET /SiteRunnerlet", s.handleSiteRunner)
	mux.HandleFunc("GET /Sitelet", s.handleSite)
	mux.HandleFunc("POST /WLGlet/run", s.handleWLGRun)
	mux.HandleFunc("POST /WLGlet/manual", s.handleWLGManual)
	mux.HandleFunc("GET /PMlet", s.handlePM)
	mux.HandleFunc("GET /PMlet/render", s.handlePMRender)
	mux.HandleFunc("POST /Faultlet", s.handleFault)
	mux.HandleFunc("POST /Resetlet", s.handleReset)
	mux.HandleFunc("POST /site/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /catalog", s.handleCatalogUpdate)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /site/{id}/traces", s.handleTraces)
	if s.profiling {
		// Opt-in only: the pprof handlers expose heap contents and expvar
		// whatever the process published; neither belongs on by default.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.Handle("GET /debug/vars", expvar.Handler())
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// current returns the hosted instance or an error.
func (s *Server) current() (*core.Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.instance == nil {
		return nil, fmt.Errorf("no Rainbow instance configured; POST /NSRunnerlet first")
	}
	return s.instance, nil
}

// handleNSRunner starts (or replaces) the instance from an experiment
// config in the request body; an empty body selects the default demo
// configuration.
func (s *Server) handleNSRunner(w http.ResponseWriter, r *http.Request) {
	exp := config.Default()
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&exp); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := exp.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	opts, err := exp.Options()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	inst, err := core.New(opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	if s.instance != nil {
		s.instance.Close()
	}
	s.instance = inst
	s.exp = exp
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "started", "sites": inst.SiteIDs()})
}

func (s *Server) handleNS(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, inst.Catalog())
}

func (s *Server) handleSiteRunner(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	type siteStatus struct {
		Site    model.SiteID `json:"site"`
		Crashed bool         `json:"crashed"`
	}
	var out []siteStatus
	for _, id := range inst.SiteIDs() {
		st, _ := inst.Site(id)
		out = append(out, siteStatus{Site: id, Crashed: st.Crashed()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSite(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	id := model.SiteID(r.URL.Query().Get("site"))
	st, ok := inst.Site(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown site %q", id))
		return
	}
	stats := st.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"stats":      stats,
		"store":      st.Store().Snapshot(),
		"durability": durabilityOf(stats),
		"pipeline":   pipelineOf(stats),
	})
}

// pipelineOf projects the command-pipeline and transport-coalescing gauges
// out of a site's stats — the batching subset scraped by load experiments.
func pipelineOf(stats monitor.SiteStats) map[string]any {
	return map[string]any{
		"queue_depth":        stats.PipeDepth,
		"submitted":          stats.PipeSubmitted,
		"batches":            stats.PipeBatches,
		"mean_batch":         stats.PipeBatchSize(),
		"max_batch":          stats.PipeMaxBatch,
		"stalls":             stats.PipeStalls,
		"spills":             stats.PipeSpills,
		"net_sent_envelopes": stats.NetSentEnvelopes,
		"net_send_flushes":   stats.NetSendFlushes,
		"net_env_per_flush":  stats.NetCoalescing(),
		"net_recv_frames":    stats.NetRecvFrames,
		"net_send_sheds":     stats.NetSendSheds,
		"net_legacy_conns":   stats.NetLegacyConns,
	}
}

// durabilityOf projects the durability counters out of a site's stats — the
// checkpoint/WAL subset monitoring systems scrape without parsing the whole
// statistics panel.
func durabilityOf(stats monitor.SiteStats) map[string]any {
	return map[string]any{
		"checkpoints":        stats.Checkpoints,
		"checkpoint_deltas":  stats.CheckpointDeltas,
		"last_horizon":       stats.CheckpointHorizon,
		"gate_pause_ns":      stats.CheckpointPauseNS,
		"dirty_shards":       stats.DirtyShards,
		"decisions":          stats.Decisions,
		"segments_compacted": stats.SegmentsCompacted,
		"wal_segments":       stats.WALSegments,
		"wal_bytes":          stats.WALBytes,
		"recovery_records":   stats.RecoveryRecords,
		"epoch":              stats.Epoch,
		"reconfigures":       stats.Reconfigures,
	}
}

// handleCatalogUpdate installs a new catalog version on the running
// instance: validate, epoch-stamp on the name server, live-reconfigure the
// sites. A stale compare-and-set epoch (see the package comment) returns
// 409 Conflict with the error body.
func (s *Server) handleCatalogUpdate(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	var exp config.Experiment
	if err := json.NewDecoder(r.Body).Decode(&exp); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := exp.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cat, err := exp.BuildCatalog()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	epoch, err := inst.UpdateCatalog(cat)
	if err != nil {
		status := http.StatusConflict // stale CAS epoch, fixed site set
		if epoch != 0 {
			// The catalog installed but a site rebuild failed.
			status = http.StatusInternalServerError
		}
		writeErr(w, status, err)
		return
	}
	s.mu.Lock()
	s.exp = exp
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "updated", "epoch": epoch})
}

// handleCheckpoint triggers a manual checkpoint on one site — the REST face
// of Site.Checkpoint, next to the automatic byte/interval policies.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	id := model.SiteID(r.PathValue("id"))
	st, ok := inst.Site(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown site %q", id))
		return
	}
	if err := st.Checkpoint(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"durability": durabilityOf(st.Stats()),
	})
}

func (s *Server) handleWLGRun(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	var wk config.Workload
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&wk); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	} else {
		s.mu.Lock()
		wk = s.exp.Workload
		s.mu.Unlock()
	}
	exp := config.Experiment{Workload: wk}
	res := inst.RunWorkload(r.Context(), exp.Profile())
	writeJSON(w, http.StatusOK, map[string]any{
		"submitted":   res.Submitted,
		"committed":   res.Committed,
		"aborted":     res.Aborted,
		"restarts":    res.Restarts,
		"commit_rate": res.CommitRate(),
		"throughput":  res.Throughput(),
		"mean_ms":     float64(res.MeanLatency().Microseconds()) / 1000.0,
	})
}

// manualReq is the /WLGlet/manual body.
type manualReq struct {
	Home model.SiteID `json:"home"`
	Ops  []wlg.Manual `json:"ops"`
}

func (s *Server) handleWLGManual(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	var req manualReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out, err := inst.SubmitManual(r.Context(), req.Home, req.Ops)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePM(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	rep := inst.Report()
	writeJSON(w, http.StatusOK, map[string]any{
		"sites":           rep.Sites,
		"net":             rep.Net,
		"totals":          rep.Totals(),
		"orphans":         inst.Orphans(),
		"load_imbalance":  rep.LoadImbalance(),
		"msgs_per_commit": rep.MessagesPerCommit(),
	})
}

func (s *Server) handlePMRender(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, inst.Report().Render())
}

// faultReq is the /Faultlet body.
type faultReq struct {
	Kind   string           `json:"kind"` // crash | recover | partition | heal
	Site   model.SiteID     `json:"site,omitempty"`
	Groups [][]model.SiteID `json:"groups,omitempty"`
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	var req faultReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch req.Kind {
	case "crash":
		err = inst.Injector.Crash(req.Site)
	case "recover":
		err = inst.Injector.Recover(req.Site)
	case "partition":
		inst.Injector.Partition(req.Groups...)
	case "heal":
		inst.Injector.Heal()
	default:
		err = fmt.Errorf("unknown fault kind %q", req.Kind)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	inst.ResetStats()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
