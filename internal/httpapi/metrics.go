// Prometheus-style scrape surface and trace export, next to the servlet
// endpoints:
//
//	GET /metrics            — cluster statistics in Prometheus text
//	                          exposition format (counters, gauges, and the
//	                          per-stage latency histograms)
//	GET /site/{id}/traces   — one site's retained trace fragments (JSON)
//
// and, when profiling is enabled (EnableProfiling / rainbow-home -pprof),
// net/http/pprof under /debug/pprof/ and expvar under /debug/vars.
package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// metricName sanitizes a stage/cause label fragment into a metric-safe form.
func metricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, s)
}

// writeMetricHeader emits the HELP/TYPE preamble once per metric family.
func writeMetricHeader(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// writeHistogram renders one monitor.Histogram as a Prometheus histogram
// family member with the given label set (no trailing comma), using the
// log2-bucket upper edges in seconds.
func writeHistogram(w io.Writer, name, labels string, h monitor.Histogram) {
	lp := ""
	if labels != "" {
		lp = labels + ","
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	var cum uint64
	for b := 0; b < monitor.NumBuckets; b++ {
		cum += h.Buckets[b]
		// Skip runs of empty leading/intermediate buckets only when nothing
		// has accumulated yet — cumulative counts must stay monotone.
		if h.Buckets[b] == 0 && cum == 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, lp,
			float64(monitor.BucketUpperNS(b))/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, lp, h.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, float64(h.SumNS)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count)
}

// WriteMetrics renders the report in Prometheus text exposition format
// (version 0.0.4). Exported so operators can reuse the renderer outside the
// HTTP server (the bench's scrape smoke test does).
func WriteMetrics(w io.Writer, rep monitor.Report) {
	counter := func(name, help string, val func(monitor.SiteStats) uint64) {
		writeMetricHeader(w, name, "counter", help)
		for _, s := range rep.Sites {
			fmt.Fprintf(w, "%s{site=%q} %d\n", name, string(s.Site), val(s))
		}
	}
	gauge := func(name, help string, val func(monitor.SiteStats) float64) {
		writeMetricHeader(w, name, "gauge", help)
		for _, s := range rep.Sites {
			fmt.Fprintf(w, "%s{site=%q} %g\n", name, string(s.Site), val(s))
		}
	}

	counter("rainbow_tx_began_total", "Transactions admitted at this home site.",
		func(s monitor.SiteStats) uint64 { return s.Began })
	counter("rainbow_tx_committed_total", "Transactions committed.",
		func(s monitor.SiteStats) uint64 { return s.Committed })
	counter("rainbow_tx_aborted_total", "Transactions aborted.",
		func(s monitor.SiteStats) uint64 { return s.Aborted })
	counter("rainbow_tx_restarts_total", "Workload-level restarts after CC rejections.",
		func(s monitor.SiteStats) uint64 { return s.Restarts })
	counter("rainbow_round_trips_total", "Request/response exchanges the site initiated.",
		func(s monitor.SiteStats) uint64 { return s.RoundTrips })
	gauge("rainbow_window_seconds", "Observation window covered by the site's counters.",
		func(s monitor.SiteStats) float64 { return float64(s.WindowNS) / 1e9 })

	writeMetricHeader(w, "rainbow_tx_aborts_by_cause_total", "counter", "Aborts keyed by cause.")
	for _, s := range rep.Sites {
		causes := make([]string, 0, len(s.AbortsByCause))
		for k := range s.AbortsByCause {
			causes = append(causes, k)
		}
		sort.Strings(causes)
		for _, k := range causes {
			fmt.Fprintf(w, "rainbow_tx_aborts_by_cause_total{site=%q,cause=%q} %d\n",
				string(s.Site), metricName(k), s.AbortsByCause[k])
		}
	}

	gauge("rainbow_orphans", "In-doubt (blocked) transactions right now.",
		func(s monitor.SiteStats) float64 { return float64(s.Orphans) })
	counter("rainbow_wal_flushes_total", "WAL force-write cycles.",
		func(s monitor.SiteStats) uint64 { return s.WALFlushes })
	counter("rainbow_wal_records_total", "WAL records forced.",
		func(s monitor.SiteStats) uint64 { return s.WALRecords })
	gauge("rainbow_wal_retained_bytes", "Retained WAL volume.",
		func(s monitor.SiteStats) float64 { return float64(s.WALBytes) })
	counter("rainbow_checkpoints_total", "Completed checkpoints.",
		func(s monitor.SiteStats) uint64 { return s.Checkpoints })
	gauge("rainbow_recovery_seconds", "Duration of the site's last restart replay.",
		func(s monitor.SiteStats) float64 { return float64(s.RecoveryNS) / 1e9 })
	gauge("rainbow_catalog_epoch", "Catalog epoch the site currently runs.",
		func(s monitor.SiteStats) float64 { return float64(s.Epoch) })
	gauge("rainbow_shards", "Data-plane shard count (storage shards and lock stripes).",
		func(s monitor.SiteStats) float64 { return float64(s.Shards) })
	gauge("rainbow_store_shards", "Sharded-store shard count reporting occupancy.",
		func(s monitor.SiteStats) float64 { return float64(len(s.StoreShards)) })

	gauge("rainbow_pipeline_depth", "Operations queued across shard sequencers.",
		func(s monitor.SiteStats) float64 { return float64(s.PipeDepth) })
	counter("rainbow_pipeline_submitted_total", "Operations admitted through the pipeline.",
		func(s monitor.SiteStats) uint64 { return s.PipeSubmitted })
	counter("rainbow_pipeline_batches_total", "Pipeline batches drained.",
		func(s monitor.SiteStats) uint64 { return s.PipeBatches })
	counter("rainbow_pipeline_spills_total", "Contended operations spilled to the blocking path.",
		func(s monitor.SiteStats) uint64 { return s.PipeSpills })

	counter("rainbow_cc_adds_total", "Blind-add intents admitted.",
		func(s monitor.SiteStats) uint64 { return s.CCAdds })
	counter("rainbow_cc_split_adds_total", "Adds admitted lock-free through a split slot.",
		func(s monitor.SiteStats) uint64 { return s.CCSplitAdds })
	counter("rainbow_cc_splits_total", "Hot items moved into split execution.",
		func(s monitor.SiteStats) uint64 { return s.CCSplits })
	counter("rainbow_cc_drains_total", "Split items drained back to locking.",
		func(s monitor.SiteStats) uint64 { return s.CCDrains })
	gauge("rainbow_cc_split_items", "Items in split execution right now.",
		func(s monitor.SiteStats) float64 { return float64(s.SplitItems) })
	counter("rainbow_releases_abandoned_total", "Release-retry loops that gave up and left cleanup to the janitor.",
		func(s monitor.SiteStats) uint64 { return s.ReleasesAbandoned })

	counter("rainbow_net_sent_envelopes_total", "Envelopes handed to the coalescing sender.",
		func(s monitor.SiteStats) uint64 { return s.NetSentEnvelopes })
	counter("rainbow_net_send_flushes_total", "Transport flush cycles (send syscalls).",
		func(s monitor.SiteStats) uint64 { return s.NetSendFlushes })
	counter("rainbow_net_recv_envelopes_total", "Envelopes decoded from incoming frames.",
		func(s monitor.SiteStats) uint64 { return s.NetRecvEnvelopes })
	counter("rainbow_net_recv_frames_total", "Multi-envelope frames decoded.",
		func(s monitor.SiteStats) uint64 { return s.NetRecvFrames })
	counter("rainbow_net_send_sheds_total", "Sends dropped under backpressure.",
		func(s monitor.SiteStats) uint64 { return s.NetSendSheds })
	counter("rainbow_net_sent_bytes_total", "Bytes written by the coalescing sender.",
		func(s monitor.SiteStats) uint64 { return s.NetSentBytes })

	writeMetricHeader(w, "rainbow_net_body_codec_total", "counter",
		"Envelope bodies sent, keyed by the wire codec that encoded them.")
	for _, s := range rep.Sites {
		fmt.Fprintf(w, "rainbow_net_body_codec_total{site=%q,codec=\"binary\"} %d\n",
			string(s.Site), s.NetBinaryBodies)
		fmt.Fprintf(w, "rainbow_net_body_codec_total{site=%q,codec=\"gob\"} %d\n",
			string(s.Site), s.NetGobBodies)
	}

	counter("rainbow_trace_sampled_total", "Transactions sampled for tracing.",
		func(s monitor.SiteStats) uint64 { return s.TraceSampled })
	counter("rainbow_trace_fragments_total", "Completed trace fragments retained.",
		func(s monitor.SiteStats) uint64 { return s.TraceFragments })
	counter("rainbow_trace_evicted_total", "Trace fragments evicted from the bounded ring.",
		func(s monitor.SiteStats) uint64 { return s.TraceEvicted })
	counter("rainbow_trace_slow_total", "Root traces over the slow threshold.",
		func(s monitor.SiteStats) uint64 { return s.TraceSlow })

	writeMetricHeader(w, "rainbow_tx_latency_seconds", "histogram",
		"End-to-end transaction response time.")
	for _, s := range rep.Sites {
		writeHistogram(w, "rainbow_tx_latency_seconds",
			fmt.Sprintf("site=%q", string(s.Site)), s.Latency)
	}

	writeMetricHeader(w, "rainbow_stage_latency_seconds", "histogram",
		"Per-stage latency (queue, admit, lock_wait, wal_fsync, prepare, ...).")
	for _, s := range rep.Sites {
		stages := make([]string, 0, len(s.Stages))
		for name := range s.Stages {
			stages = append(stages, name)
		}
		sort.Strings(stages)
		for _, name := range stages {
			writeHistogram(w, "rainbow_stage_latency_seconds",
				fmt.Sprintf("site=%q,stage=%q", string(s.Site), metricName(name)), s.Stages[name])
		}
	}

	writeMetricHeader(w, "rainbow_net_messages_total", "counter",
		"Network-level message counters (whole instance).")
	fmt.Fprintf(w, "rainbow_net_messages_total{kind=\"sent\"} %d\n", rep.Net.Sent)
	fmt.Fprintf(w, "rainbow_net_messages_total{kind=\"delivered\"} %d\n", rep.Net.Delivered)
	fmt.Fprintf(w, "rainbow_net_messages_total{kind=\"dropped\"} %d\n", rep.Net.Dropped)
	writeMetricHeader(w, "rainbow_net_bytes_total", "counter", "Network payload bytes.")
	fmt.Fprintf(w, "rainbow_net_bytes_total %d\n", rep.Net.Bytes)
	writeMetricHeader(w, "rainbow_net_codec", "counter",
		"Message payloads sent per negotiated wire codec (whole instance).")
	fmt.Fprintf(w, "rainbow_net_codec{codec=\"binary\"} %d\n", rep.Net.CodecBinary)
	fmt.Fprintf(w, "rainbow_net_codec{codec=\"gob\"} %d\n", rep.Net.CodecGob)
}

// handleMetrics serves GET /metrics: the scrape endpoint.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, inst.Report())
}

// handleTraces serves GET /site/{id}/traces: the site's retained trace
// fragments, oldest first. Query parameters narrow the result:
//
//	tx      — only fragments for this transaction ID ("S1:42")
//	min_ms  — only fragments at least this many milliseconds long
//	limit   — keep only the newest N fragments after filtering
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	inst, err := s.current()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	id := model.SiteID(r.PathValue("id"))
	st, ok := inst.Site(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown site %q", id))
		return
	}
	traces := st.Traces()

	q := r.URL.Query()
	if tx := q.Get("tx"); tx != "" {
		traces = filterTraces(traces, func(t trace.Trace) bool { return t.Tx.String() == tx })
	}
	if raw := q.Get("min_ms"); raw != "" {
		minMS, err := strconv.ParseFloat(raw, 64)
		if err != nil || minMS < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", raw))
			return
		}
		minDur := time.Duration(minMS * float64(time.Millisecond))
		traces = filterTraces(traces, func(t trace.Trace) bool { return t.Duration() >= minDur })
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", raw))
			return
		}
		if n < len(traces) {
			// Fragments are oldest-first; keep the newest n.
			traces = traces[len(traces)-n:]
		}
	}

	pol := st.Tracer().Policy()
	writeJSON(w, http.StatusOK, map[string]any{
		"site":        id,
		"sample_rate": pol.SampleRate,
		"ring":        pol.Ring,
		"traces":      traces,
		"count":       len(traces),
	})
}

// filterTraces keeps the fragments matching keep, preserving order.
func filterTraces(ts []trace.Trace, keep func(trace.Trace) bool) []trace.Trace {
	out := ts[:0:0]
	for _, t := range ts {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}
