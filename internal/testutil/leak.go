// Package testutil holds cross-suite test helpers. Its centerpiece is a
// hand-rolled goroutine-leak check (the module graph is pinned with no
// network, so go.uber.org/goleak is not an option): a TestMain wrapper
// that snapshots the goroutine dump after the suite and fails if any
// goroutine is still running this repo's code. Every background worker in
// the tree (acceptor loops, shard sequencers, janitors, coalescing
// senders) is owned by a Close/Stop, so a survivor here is a missing
// shutdown path, not noise.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyMain runs the suite and then fails the process if goroutines
// running repro code outlive it. Use from a one-line TestMain:
//
//	func TestMain(m *testing.M) { testutil.VerifyMain(m) }
func VerifyMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := leakedGoroutines(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr,
				"goroutine leak check: %d goroutine(s) still running repro code after the suite:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// leakedGoroutines polls the full goroutine dump until no repro-owned
// goroutine remains or the deadline passes, returning the survivors'
// stacks. The retry loop gives legitimate shutdown paths (connection
// teardown, drain-on-close) time to run down before we call leak.
func leakedGoroutines(wait time.Duration) []string {
	deadline := time.Now().Add(wait)
	delay := 1 * time.Millisecond
	for {
		leaked := reproGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// reproGoroutines returns the stack of every goroutine (other than the
// caller's) with a repro function frame.
func reproGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.HasPrefix(g, "goroutine ") || !isReproGoroutine(g) {
			continue
		}
		// Skip the goroutine running this check itself.
		if strings.Contains(g, "repro/internal/testutil.reproGoroutines") {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// isReproGoroutine reports whether any function frame in the stanza is
// from this module. Function lines are unindented ("repro/internal/…");
// the tab-indented lines are file positions and are ignored so a GOPATH
// containing "repro" cannot confuse the match.
func isReproGoroutine(stanza string) bool {
	for _, line := range strings.Split(stanza, "\n") {
		if strings.HasPrefix(line, "repro/") ||
			strings.HasPrefix(line, "created by repro/") {
			return true
		}
	}
	return false
}
