package simnet

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/wire"
)

func attach(t *testing.T, n *Net, id model.SiteID, h wire.Handler) wire.Endpoint {
	t.Helper()
	if h == nil {
		h = func(*wire.Envelope) {}
	}
	ep, err := n.Attach(id, h)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeliver(t *testing.T) {
	n := New(Config{})
	var got atomic.Int32
	attach(t, n, "b", func(env *wire.Envelope) {
		if env.From == "a" && env.Kind == wire.KindPing {
			got.Add(1)
		}
	})
	a := attach(t, n, "a", nil)
	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b", Kind: wire.KindPing}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 }, "message not delivered")
}

func TestLatency(t *testing.T) {
	n := New(Config{BaseLatency: 30 * time.Millisecond})
	done := make(chan time.Time, 1)
	attach(t, n, "b", func(*wire.Envelope) { done <- time.Now() })
	a := attach(t, n, "a", nil)
	start := time.Now()
	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	arrived := <-done
	if d := arrived.Sub(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", d)
	}
}

func TestDropAll(t *testing.T) {
	n := New(Config{DropRate: 1.0})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)
	for i := 0; i < 20; i++ {
		a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Errorf("%d messages delivered with DropRate=1", got.Load())
	}
	if s := n.Stats(); s.Dropped != 20 {
		t.Errorf("Dropped = %d, want 20", s.Dropped)
	}
}

func TestDropRateStatistical(t *testing.T) {
	n := New(Config{DropRate: 0.5, Seed: 42})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)
	const total = 1000
	for i := 0; i < total; i++ {
		a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	}
	waitFor(t, func() bool {
		s := n.Stats()
		return s.Delivered+s.Dropped == total
	}, "messages unaccounted for")
	d := int(got.Load())
	if d < 350 || d > 650 {
		t.Errorf("delivered %d of %d with 50%% drop, outside [350,650]", d, total)
	}
}

func TestPartition(t *testing.T) {
	n := New(Config{})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)

	n.Partition([]model.SiteID{"a"}, []model.SiteID{"b"})
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	time.Sleep(10 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("message crossed partition")
	}

	n.Heal()
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	waitFor(t, func() bool { return got.Load() == 1 }, "message not delivered after heal")
}

func TestPartitionSameGroupDelivers(t *testing.T) {
	n := New(Config{})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)
	n.Partition([]model.SiteID{"a", "b"}, []model.SiteID{"c"})
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	waitFor(t, func() bool { return got.Load() == 1 }, "same-group message not delivered")
}

func TestPauseResume(t *testing.T) {
	n := New(Config{})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)

	n.Pause("b")
	if !n.Paused("b") {
		t.Fatal("b should be paused")
	}
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	time.Sleep(10 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("paused site received a message")
	}

	n.Resume("b")
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	waitFor(t, func() bool { return got.Load() == 1 }, "resumed site did not receive")
}

func TestPausedSenderProducesNoTraffic(t *testing.T) {
	n := New(Config{})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)
	n.Pause("a")
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	time.Sleep(10 * time.Millisecond)
	if got.Load() != 0 {
		t.Error("paused sender's message was delivered")
	}
	if s := n.Stats(); s.Sent != 0 {
		t.Errorf("paused sender counted as Sent: %+v", s)
	}
}

func TestInFlightToCrashedSiteDropped(t *testing.T) {
	n := New(Config{BaseLatency: 20 * time.Millisecond})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	n.Pause("b") // crash while the message is in flight
	time.Sleep(50 * time.Millisecond)
	if got.Load() != 0 {
		t.Error("in-flight message delivered to crashed site")
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New(Config{})
	attach(t, n, "b", func(*wire.Envelope) {})
	a := attach(t, n, "a", nil)
	env := &wire.Envelope{From: "a", To: "b", Payload: []byte("hello")}
	for i := 0; i < 5; i++ {
		a.Send(context.Background(), env)
	}
	waitFor(t, func() bool { return n.Stats().Delivered == 5 }, "deliveries not counted")
	s := n.Stats()
	if s.Sent != 5 {
		t.Errorf("Sent = %d", s.Sent)
	}
	if s.Bytes == 0 {
		t.Error("Bytes not counted")
	}
	if s.PerLink[LinkKey{"a", "b"}] != 5 {
		t.Errorf("PerLink = %v", s.PerLink)
	}

	n.ResetStats()
	if s := n.Stats(); s.Sent != 0 || s.Delivered != 0 || len(s.PerLink) != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestPerLinkOverride(t *testing.T) {
	n := New(Config{})
	var got atomic.Int32
	attach(t, n, "b", func(*wire.Envelope) { got.Add(1) })
	a := attach(t, n, "a", nil)
	n.SetLink("a", "b", Link{DropRate: 1.0})
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	time.Sleep(10 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("per-link drop override ignored")
	}
	n.ClearLinks()
	a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
	waitFor(t, func() bool { return got.Load() == 1 }, "message not delivered after ClearLinks")
}

func TestDuplicateAttach(t *testing.T) {
	n := New(Config{})
	attach(t, n, "a", nil)
	if _, err := n.Attach("a", func(*wire.Envelope) {}); err == nil {
		t.Error("duplicate attach should fail")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	n := New(Config{})
	if _, err := n.Attach("a", nil); err == nil {
		t.Error("nil handler should be rejected")
	}
}

func TestClosedEndpointSendFails(t *testing.T) {
	n := New(Config{})
	a := attach(t, n, "a", nil)
	a.Close()
	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"}); err == nil {
		t.Error("send on closed endpoint should fail")
	}
}

func TestReattachAfterClose(t *testing.T) {
	n := New(Config{})
	a := attach(t, n, "a", nil)
	a.Close()
	if _, err := n.Attach("a", func(*wire.Envelope) {}); err != nil {
		t.Errorf("re-attach after close failed: %v", err)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() uint64 {
		n := New(Config{DropRate: 0.3, Seed: 7})
		attach(t, n, "b", func(*wire.Envelope) {})
		a := attach(t, n, "a", nil)
		for i := 0; i < 200; i++ {
			a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
		}
		waitFor(t, func() bool {
			s := n.Stats()
			return s.Delivered+s.Dropped == 200
		}, "messages unaccounted for")
		return n.Stats().Dropped
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different drop counts: %d vs %d", a, b)
	}
}
