// Package simnet implements Rainbow's network simulator: an in-process
// wire.Network with configurable per-link latency and jitter, probabilistic
// message loss, network partitions, and site pause/resume (the transport
// face of crash injection).
//
// The simulator also keeps the traffic accounting the paper's progress
// monitor reports: total messages, bytes, drops, and per-link counts for
// load balance/imbalance indicators.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/wire"
)

// Config sets the default link behaviour. Per-link overrides are available
// via SetLink.
type Config struct {
	// BaseLatency is the minimum one-way delivery latency.
	BaseLatency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate is the probability in [0,1] that a message is silently lost.
	DropRate float64
	// Seed seeds the simulator's private PRNG; 0 selects a fixed default so
	// runs are reproducible unless explicitly varied.
	Seed int64
}

// Link overrides Config for one directed site pair.
type Link struct {
	BaseLatency time.Duration
	Jitter      time.Duration
	DropRate    float64
}

// Stats is a snapshot of the simulator's traffic counters.
type Stats struct {
	Sent      uint64 // messages accepted for delivery (after partition/drop filtering they may still count as Dropped)
	Delivered uint64
	Dropped   uint64 // lost to DropRate, partitions, or paused destinations
	Bytes     uint64 // bytes of delivered messages
	// CodecBinary/CodecGob count sent messages by body codec. In-process
	// peers always negotiate binary, so gob only appears for raw payloads
	// injected by tests.
	CodecBinary uint64
	CodecGob    uint64
	// PerLink counts delivered messages per directed (from,to) pair.
	PerLink map[LinkKey]uint64
}

// LinkKey is a directed site pair.
type LinkKey struct {
	From, To model.SiteID
}

// Net is the simulated network. The zero value is not usable; use New.
type Net struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	nodes     map[model.SiteID]*node
	links     map[LinkKey]Link
	partition map[model.SiteID]int // partition group; absent = group 0

	sent, delivered, dropped, bytes uint64
	codecBinary, codecGob           uint64
	perLink                         map[LinkKey]uint64
}

type node struct {
	id      model.SiteID
	net     *Net
	handler wire.Handler
	paused  bool
	closed  bool
}

// New builds a simulated network with the given defaults.
func New(cfg Config) *Net {
	seed := cfg.Seed
	if seed == 0 {
		seed = 20000619 // VLDB 2000, page 619: fixed default for reproducibility
	}
	return &Net{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[model.SiteID]*node),
		links:     make(map[LinkKey]Link),
		partition: make(map[model.SiteID]int),
		perLink:   make(map[LinkKey]uint64),
	}
}

// Attach implements wire.Network.
func (n *Net) Attach(id model.SiteID, h wire.Handler) (wire.Endpoint, error) {
	if h == nil {
		return nil, errors.New("simnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[id]; ok && !nd.closed {
		return nil, fmt.Errorf("simnet: %s already attached", id)
	}
	nd := &node{id: id, net: n, handler: h}
	n.nodes[id] = nd
	return nd, nil
}

// SetLink overrides behaviour for the directed link from→to.
func (n *Net) SetLink(from, to model.SiteID, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[LinkKey{from, to}] = l
}

// ClearLinks removes all per-link overrides.
func (n *Net) ClearLinks() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links = make(map[LinkKey]Link)
}

// Partition splits the network into groups; messages cross groups only to
// be dropped. Sites not mentioned fall into group 0.
func (n *Net) Partition(groups ...[]model.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[model.SiteID]int)
	for g, sites := range groups {
		for _, s := range sites {
			n.partition[s] = g + 1
		}
	}
}

// Heal removes all partitions.
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[model.SiteID]int)
}

// Pause makes a site unreachable and unable to send — the transport face of
// a site crash. In-flight messages to it are dropped at delivery time.
func (n *Net) Pause(id model.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[id]; ok {
		nd.paused = true
	}
}

// Resume reverses Pause.
func (n *Net) Resume(id model.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[id]; ok {
		nd.paused = false
	}
}

// Paused reports whether the site is currently paused.
func (n *Net) Paused(id model.SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	return ok && nd.paused
}

// Stats snapshots the traffic counters.
func (n *Net) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	per := make(map[LinkKey]uint64, len(n.perLink))
	for k, v := range n.perLink {
		per[k] = v
	}
	return Stats{
		Sent: n.sent, Delivered: n.delivered, Dropped: n.dropped, Bytes: n.bytes,
		CodecBinary: n.codecBinary, CodecGob: n.codecGob, PerLink: per,
	}
}

// ResetStats zeroes the traffic counters.
func (n *Net) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sent, n.delivered, n.dropped, n.bytes = 0, 0, 0, 0
	n.codecBinary, n.codecGob = 0, 0
	n.perLink = make(map[LinkKey]uint64)
}

// ID implements wire.Endpoint.
func (nd *node) ID() model.SiteID { return nd.id }

// Close implements wire.Endpoint.
func (nd *node) Close() error {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	nd.closed = true
	delete(n.nodes, nd.id)
	return nil
}

// Send implements wire.Endpoint. It applies partition, drop and latency
// rules, then delivers asynchronously on a timer goroutine. The typed body
// is flattened to the binary codec before delivery — in-process peers all
// speak it, and encoding even here preserves the package's promises: real
// message sizes, no pointer sharing, and byte traffic identical to what the
// TCP transport's negotiated-binary connections carry.
func (nd *node) Send(_ context.Context, env *wire.Envelope) error {
	if err := env.Flatten(wire.CodecBinary); err != nil {
		return fmt.Errorf("simnet: encode %v body: %w", env.Kind, err)
	}
	n := nd.net
	n.mu.Lock()
	if nd.closed {
		n.mu.Unlock()
		return fmt.Errorf("simnet: %s detached", nd.id)
	}
	if nd.paused {
		// A crashed site produces no traffic; callers time out.
		n.mu.Unlock()
		return nil
	}
	n.sent++
	if env.Codec == wire.CodecBinary {
		n.codecBinary++
	} else {
		n.codecGob++
	}
	dst, ok := n.nodes[env.To]
	if !ok || dst.closed {
		n.dropped++
		n.mu.Unlock()
		return nil // unknown destination behaves like loss: sender times out
	}
	if n.partition[env.From] != n.partition[env.To] {
		n.dropped++
		n.mu.Unlock()
		return nil
	}
	link := Link{BaseLatency: n.cfg.BaseLatency, Jitter: n.cfg.Jitter, DropRate: n.cfg.DropRate}
	if l, ok := n.links[LinkKey{env.From, env.To}]; ok {
		link = l
	}
	if link.DropRate > 0 && n.rng.Float64() < link.DropRate {
		n.dropped++
		n.mu.Unlock()
		return nil
	}
	delay := link.BaseLatency
	if link.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(link.Jitter)))
	}
	n.mu.Unlock()

	deliver := func() {
		n.mu.Lock()
		d, ok := n.nodes[env.To]
		if !ok || d.closed || d.paused {
			n.dropped++
			n.mu.Unlock()
			return
		}
		n.delivered++
		n.bytes += uint64(env.Size())
		n.perLink[LinkKey{env.From, env.To}]++
		h := d.handler
		n.mu.Unlock()
		h(env)
	}
	if delay <= 0 {
		go deliver()
	} else {
		time.AfterFunc(delay, deliver)
	}
	return nil
}
