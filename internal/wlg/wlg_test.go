package wlg

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// fakeSubmitter commits or aborts according to a script.
type fakeSubmitter struct {
	mu       sync.Mutex
	calls    int
	perHome  map[model.SiteID]int
	inFlight atomic.Int32
	maxInFly int32
	// failFirst aborts the first k attempts of every transaction.
	failFirst int
	attempts  map[string]int
	cause     model.AbortCause
	delay     time.Duration
}

func newSub() *fakeSubmitter {
	return &fakeSubmitter{perHome: make(map[model.SiteID]int), attempts: make(map[string]int), cause: model.AbortCC}
}

func key(ops []model.Op) string {
	s := ""
	for _, op := range ops {
		s += op.String()
	}
	return s
}

func (f *fakeSubmitter) Submit(_ context.Context, home model.SiteID, ops []model.Op) model.Outcome {
	cur := f.inFlight.Add(1)
	defer f.inFlight.Add(-1)
	f.mu.Lock()
	if cur > f.maxInFly {
		f.maxInFly = cur
	}
	f.calls++
	f.perHome[home]++
	f.attempts[key(ops)]++
	attempt := f.attempts[key(ops)]
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if attempt <= f.failFirst {
		return model.Outcome{Committed: false, Cause: f.cause, HomeSite: home, LatencyNS: int64(time.Millisecond)}
	}
	return model.Outcome{Committed: true, HomeSite: home, LatencyNS: int64(time.Millisecond)}
}

func profile(n int) Profile {
	return Profile{
		Sites:        []model.SiteID{"A", "B", "C"},
		Items:        []model.ItemID{"x", "y", "z", "u", "v"},
		Transactions: n,
	}
}

func TestClosedLoopRunsAllTransactions(t *testing.T) {
	sub := newSub()
	g := New(profile(30))
	res := g.Run(context.Background(), sub)
	if res.Submitted != 30 || res.Committed != 30 || res.Aborted != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.CommitRate() != 1 {
		t.Errorf("commit rate = %v", res.CommitRate())
	}
	if res.Throughput() <= 0 {
		t.Error("throughput should be positive")
	}
}

func TestRoundRobinHomesBalanced(t *testing.T) {
	sub := newSub()
	g := New(profile(30))
	g.Run(context.Background(), sub)
	for _, home := range []model.SiteID{"A", "B", "C"} {
		if sub.perHome[home] != 10 {
			t.Errorf("home %s got %d transactions, want 10", home, sub.perHome[home])
		}
	}
}

func TestRandomHomesCoverAllSites(t *testing.T) {
	sub := newSub()
	p := profile(120)
	p.RandomHomes = true
	New(p).Run(context.Background(), sub)
	for _, home := range []model.SiteID{"A", "B", "C"} {
		if sub.perHome[home] == 0 {
			t.Errorf("home %s never used", home)
		}
	}
}

func TestMPLBoundsConcurrency(t *testing.T) {
	sub := newSub()
	sub.delay = 5 * time.Millisecond
	p := profile(40)
	p.MPL = 4
	New(p).Run(context.Background(), sub)
	if sub.maxInFly > 4 {
		t.Errorf("in-flight reached %d with MPL=4", sub.maxInFly)
	}
	if sub.maxInFly < 2 {
		t.Errorf("in-flight never exceeded 1 with MPL=4")
	}
}

func TestOpMixRespectsReadFraction(t *testing.T) {
	p := profile(1)
	p.ReadFraction = 1.0
	g := New(p)
	for i := 0; i < 50; i++ {
		for _, op := range g.NextTx() {
			if op.Kind != model.OpRead {
				t.Fatal("write generated with ReadFraction=1")
			}
		}
	}
	p.ReadFraction = 0.000001 // all writes (0 means default, so use epsilon)
	g = New(p)
	writes := 0
	for i := 0; i < 50; i++ {
		for _, op := range g.NextTx() {
			if op.Kind == model.OpWrite {
				writes++
			}
		}
	}
	if writes < 190 {
		t.Errorf("writes = %d of 200 with ReadFraction≈0", writes)
	}
}

func TestAddFractionGeneratesAdds(t *testing.T) {
	p := profile(1)
	p.ReadFraction = 0.000001
	p.AddFraction = 1.0
	p.OpsPerTx = 4
	g := New(p)
	adds := 0
	for i := 0; i < 50; i++ {
		for _, op := range g.NextTx() {
			if op.Kind == model.OpAdd {
				adds++
				if op.Value == 0 {
					t.Fatal("blind add with zero delta")
				}
			}
		}
	}
	if adds < 190 {
		t.Errorf("adds = %d of 200 with AddFraction=1, ReadFraction≈0", adds)
	}
}

// TestAddNeverMixesWithSameItem: a blind add may not share a transaction
// with a read or write of the same item — the session write set cannot
// merge a delta with an absolute record, and the site layer dooms such
// transactions. The generator must coerce collisions, never emit them.
func TestAddNeverMixesWithSameItem(t *testing.T) {
	p := profile(1)
	p.ReadFraction = 0.4
	p.AddFraction = 0.5
	p.OpsPerTx = 6
	p.HotItems = 2 // force item collisions within a transaction
	g := New(p)
	for i := 0; i < 300; i++ {
		ops := g.NextTx()
		added := map[model.ItemID]bool{}
		rw := map[model.ItemID]bool{}
		for _, op := range ops {
			if op.Kind == model.OpAdd {
				added[op.Item] = true
			} else {
				rw[op.Item] = true
			}
		}
		for item := range added {
			if rw[item] {
				t.Fatalf("tx %d mixes add and read/write on %s: %v", i, item, ops)
			}
		}
	}
}

func TestOpsPerTx(t *testing.T) {
	p := profile(1)
	p.OpsPerTx = 7
	g := New(p)
	if got := len(g.NextTx()); got != 7 {
		t.Errorf("ops = %d", got)
	}
}

func TestHotItemsRestrictAccess(t *testing.T) {
	p := profile(1)
	p.HotItems = 2
	g := New(p)
	// Items sorted: u,v,x,y,z → hot set {u,v}.
	for i := 0; i < 100; i++ {
		for _, op := range g.NextTx() {
			if op.Item != "u" && op.Item != "v" {
				t.Fatalf("access outside hot set: %v", op)
			}
		}
	}
}

func TestZipfSkewsAccess(t *testing.T) {
	p := profile(1)
	p.Zipf = 1.5
	g := New(p)
	counts := make(map[model.ItemID]int)
	for i := 0; i < 500; i++ {
		for _, op := range g.NextTx() {
			counts[op.Item]++
		}
	}
	// First item (sorted: "u") must dominate under zipf 1.5.
	max, maxItem := 0, model.ItemID("")
	total := 0
	for it, n := range counts {
		total += n
		if n > max {
			max, maxItem = n, it
		}
	}
	if maxItem != "u" {
		t.Errorf("hottest item = %s, want first sorted item", maxItem)
	}
	if float64(max)/float64(total) < 0.4 {
		t.Errorf("zipf skew too weak: max share %v", float64(max)/float64(total))
	}
}

func TestRetriesRestartAbortedCC(t *testing.T) {
	sub := newSub()
	sub.failFirst = 2
	p := profile(5)
	p.Retries = 3
	res := New(p).Run(context.Background(), sub)
	if res.Committed != 5 {
		t.Errorf("committed = %d, want 5 after retries", res.Committed)
	}
	if res.Restarts != 10 {
		t.Errorf("restarts = %d, want 2 per tx = 10", res.Restarts)
	}
}

func TestRetriesSkipRCPAborts(t *testing.T) {
	sub := newSub()
	sub.failFirst = 100
	sub.cause = model.AbortRCP
	p := profile(3)
	p.Retries = 5
	res := New(p).Run(context.Background(), sub)
	if res.Restarts != 0 {
		t.Errorf("RCP aborts restarted %d times; pointless retries", res.Restarts)
	}
	if res.Aborted != 3 || res.ByCause[model.AbortRCP] != 3 {
		t.Errorf("result = %+v", res)
	}
}

func TestOpenLoopPoisson(t *testing.T) {
	sub := newSub()
	p := profile(20)
	p.ArrivalRate = 1000 // fast arrivals to keep the test quick
	res := New(p).Run(context.Background(), sub)
	if res.Submitted != 20 || res.Committed != 20 {
		t.Errorf("result = %+v", res)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	sub := newSub()
	sub.delay = 10 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	p := profile(1000)
	res := New(p).Run(ctx, sub)
	if res.Submitted >= 1000 {
		t.Error("cancellation did not stop the run")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	p := profile(1)
	p.Seed = 42
	a := New(p)
	b := New(p)
	for i := 0; i < 20; i++ {
		ta, tb := a.NextTx(), b.NextTx()
		if len(ta) != len(tb) {
			t.Fatal("lengths differ")
		}
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("tx %d op %d: %v vs %v", i, j, ta[j], tb[j])
			}
		}
	}
}

func TestMeanLatency(t *testing.T) {
	sub := newSub()
	res := New(profile(10)).Run(context.Background(), sub)
	if res.MeanLatency() != time.Millisecond {
		t.Errorf("mean latency = %v", res.MeanLatency())
	}
	if (Result{}).MeanLatency() != 0 {
		t.Error("empty result should have zero latency")
	}
}

func TestComposeManual(t *testing.T) {
	ops, err := Compose([]Manual{
		{Kind: "r", Item: "x"},
		{Kind: "w", Item: "y", Value: 7},
		{Kind: "read", Item: "z"},
		{Kind: "W", Item: "x", Value: -1},
		{Kind: "a", Item: "cnt", Value: 5},
		{Kind: "add", Item: "cnt", Value: -2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 6 || ops[0].Kind != model.OpRead || ops[1].Value != 7 || ops[3].Item != "x" {
		t.Errorf("ops = %v", ops)
	}
	if ops[4].Kind != model.OpAdd || ops[4].Value != 5 || ops[5].Kind != model.OpAdd || ops[5].Value != -2 {
		t.Errorf("add ops = %v", ops[4:])
	}
	if _, err := Compose([]Manual{{Kind: "delete", Item: "x"}}); err == nil {
		t.Error("invalid manual op accepted")
	}
}
