package wlg

import (
	"context"

	"repro/internal/model"
	"repro/internal/wire"
)

// RemoteSubmitter submits transactions to Rainbow sites over the wire layer
// (the WLGlet path: "WLGlet transfers transaction processing related
// requests to Rainbow sites"). It implements Submitter, so the same
// Generator drives in-process instances and live remote clusters alike.
type RemoteSubmitter struct {
	Peer *wire.Peer
}

// Submit implements Submitter: a synchronous SubmitTx RPC to the home site.
func (r RemoteSubmitter) Submit(ctx context.Context, home model.SiteID, ops []model.Op) model.Outcome {
	resp, err := wire.Call[wire.SubmitTxResp](ctx, r.Peer, home, wire.KindSubmitTx, &wire.SubmitTxReq{Ops: ops})
	if err != nil {
		return model.Outcome{Committed: false, Cause: model.CauseOf(err), HomeSite: home}
	}
	return resp.Outcome
}
