// Package wlg implements Rainbow's workload generator (the WLG in WLGlet).
// It supports the paper's two modes (§4.2): manual workload generation —
// the user composes individual transactions and submits them — and
// simulated workload generation, which synthesizes a stream of transactions
// from a statistical profile (arrival process, operation mix, access skew)
// and dispatches them across the Rainbow sites.
package wlg

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
)

// Submitter executes one transaction at a chosen home site and reports its
// outcome. The core instance implements it over site.Execute (in-process)
// or over SubmitTx RPCs (remote).
type Submitter interface {
	Submit(ctx context.Context, home model.SiteID, ops []model.Op) model.Outcome
}

// Profile is the simulated-workload configuration panel.
type Profile struct {
	// Sites are the home sites transactions are dispatched to, round-robin
	// (the balanced default) or uniformly at random when RandomHomes is set.
	Sites       []model.SiteID
	RandomHomes bool

	// Items is the accessible database (sorted for determinism).
	Items []model.ItemID

	// Transactions is the total number of transactions to run (closed
	// loop). In open-loop mode it bounds the stream length.
	Transactions int

	// MPL is the multiprogramming level: the number of concurrent
	// client loops in closed-loop mode. Default 1.
	MPL int

	// ArrivalRate, when positive, switches to open-loop mode: transactions
	// arrive in a Poisson process of this rate (tx/second) regardless of
	// completions.
	ArrivalRate float64

	// OpsPerTx is the number of operations per transaction. Default 4.
	OpsPerTx int

	// ReadFraction is the probability an operation is a read. Default 0.75.
	ReadFraction float64

	// AddFraction is the probability a non-read operation is a blind
	// commutative add (reconciled at commit) instead of an absolute
	// write. Hot-key add workloads are what split execution accelerates.
	// Default 0.
	AddFraction float64

	// Zipf, when > 0, skews item access with the given Zipf s parameter
	// (s > 1); otherwise access is uniform.
	Zipf float64

	// HotItems restricts all accesses to the first N items (a hotspot);
	// 0 means no restriction.
	HotItems int

	// Retries is the number of times an aborted transaction is restarted
	// with jittered backoff before being reported as aborted. 0 disables
	// restarts.
	Retries int

	// Seed makes the workload reproducible; 0 selects a fixed default.
	Seed int64
}

// withDefaults fills zero fields.
func (p Profile) withDefaults() Profile {
	if p.MPL <= 0 {
		p.MPL = 1
	}
	if p.OpsPerTx <= 0 {
		p.OpsPerTx = 4
	}
	if p.ReadFraction == 0 {
		p.ReadFraction = 0.75
	}
	if p.Seed == 0 {
		p.Seed = 619
	}
	if p.Transactions <= 0 {
		p.Transactions = 100
	}
	sort.Slice(p.Items, func(i, j int) bool { return p.Items[i] < p.Items[j] })
	return p
}

// Result summarizes one workload run.
type Result struct {
	Submitted  int
	Committed  int
	Aborted    int
	Restarts   int
	ByCause    map[model.AbortCause]int
	Elapsed    time.Duration
	Outcomes   []model.Outcome
	LatencySum time.Duration
}

// CommitRate returns committed / submitted.
func (r Result) CommitRate() float64 {
	if r.Submitted == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Submitted)
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// MeanLatency returns the mean response time of finished transactions.
func (r Result) MeanLatency() time.Duration {
	if r.Submitted == 0 {
		return 0
	}
	return r.LatencySum / time.Duration(r.Submitted)
}

// Generator produces and dispatches workloads.
type Generator struct {
	profile Profile

	mu  sync.Mutex
	rng *rand.Rand
	// itemPicker returns an index into profile.Items.
	itemPicker func() int
	seq        int
}

// New builds a generator for the given profile.
func New(profile Profile) *Generator {
	p := profile.withDefaults()
	g := &Generator{profile: p, rng: rand.New(rand.NewSource(p.Seed))}
	n := len(p.Items)
	if p.HotItems > 0 && p.HotItems < n {
		n = p.HotItems
	}
	if n <= 0 {
		n = 1
	}
	if p.Zipf > 1 {
		z := rand.NewZipf(g.rng, p.Zipf, 1, uint64(n-1))
		g.itemPicker = func() int { return int(z.Uint64()) }
	} else {
		g.itemPicker = func() int { return g.rng.Intn(n) }
	}
	return g
}

// Profile returns the effective (default-filled) profile.
func (g *Generator) Profile() Profile { return g.profile }

// NextTx synthesizes the next transaction's operations. Writes use a value
// derived from the generator sequence so committed values are traceable.
// Blind adds may not mix with reads or writes of the same item inside one
// transaction (the home site rejects that), so when the sampled kind
// collides with the item's earlier use the op is coerced to the
// established class — adds merge anyway, and a read that was going to be
// an add becomes one more delta instead of an abort.
func (g *Generator) NextTx() []model.Op {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	p := g.profile
	ops := make([]model.Op, 0, p.OpsPerTx)
	var added, rw map[model.ItemID]bool
	if p.AddFraction > 0 {
		added = make(map[model.ItemID]bool, p.OpsPerTx)
		rw = make(map[model.ItemID]bool, p.OpsPerTx)
	}
	for i := 0; i < p.OpsPerTx; i++ {
		item := g.profile.Items[g.itemPicker()]
		read := g.rng.Float64() < p.ReadFraction
		add := p.AddFraction > 0 && !read && g.rng.Float64() < p.AddFraction
		if added != nil {
			switch {
			case added[item]:
				read, add = false, true
			case rw[item]:
				add = false
			case add:
				added[item] = true
			default:
				rw[item] = true
			}
		}
		switch {
		case add:
			ops = append(ops, model.Add(item, int64(i+1)))
		case read:
			ops = append(ops, model.Read(item))
		default:
			ops = append(ops, model.Write(item, int64(g.seq*100+i)))
		}
	}
	return ops
}

// nextHome picks the home site for the n-th transaction.
func (g *Generator) nextHome(n int) model.SiteID {
	if g.profile.RandomHomes {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.profile.Sites[g.rng.Intn(len(g.profile.Sites))]
	}
	return g.profile.Sites[n%len(g.profile.Sites)]
}

// interarrival samples a Poisson interarrival gap.
func (g *Generator) interarrival() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	gap := -math.Log(u) / g.profile.ArrivalRate
	return time.Duration(gap * float64(time.Second))
}

// backoff returns the jittered restart delay for the k-th retry.
func (g *Generator) backoff(k int) time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	max := 10 * (1 << uint(k))
	if max > 320 {
		max = 320
	}
	return time.Duration(g.rng.Intn(max)+1) * time.Millisecond
}

// Run executes the configured workload against sub and returns the result.
// Closed-loop mode runs MPL concurrent clients, each submitting its next
// transaction when the previous finishes; open-loop mode launches
// transactions on a Poisson schedule.
func (g *Generator) Run(ctx context.Context, sub Submitter) Result {
	if g.profile.ArrivalRate > 0 {
		return g.runOpen(ctx, sub)
	}
	return g.runClosed(ctx, sub)
}

func (g *Generator) runClosed(ctx context.Context, sub Submitter) Result {
	p := g.profile
	var (
		mu       sync.Mutex
		outcomes []model.Outcome
		restarts int
	)
	next := make(chan int, p.Transactions)
	for i := 0; i < p.Transactions; i++ {
		next <- i
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < p.MPL; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range next {
				if ctx.Err() != nil {
					return
				}
				out, r := g.submitWithRetry(ctx, sub, n)
				mu.Lock()
				outcomes = append(outcomes, out)
				restarts += r
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return summarize(outcomes, restarts, time.Since(start))
}

func (g *Generator) runOpen(ctx context.Context, sub Submitter) Result {
	p := g.profile
	var (
		mu       sync.Mutex
		outcomes []model.Outcome
		restarts int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for n := 0; n < p.Transactions && ctx.Err() == nil; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			out, r := g.submitWithRetry(ctx, sub, n)
			mu.Lock()
			outcomes = append(outcomes, out)
			restarts += r
			mu.Unlock()
		}(n)
		select {
		case <-ctx.Done():
		case <-time.After(g.interarrival()):
		}
	}
	wg.Wait()
	return summarize(outcomes, restarts, time.Since(start))
}

func (g *Generator) submitWithRetry(ctx context.Context, sub Submitter, n int) (model.Outcome, int) {
	ops := g.NextTx()
	home := g.nextHome(n)
	out := sub.Submit(ctx, home, ops)
	restarts := 0
	for k := 0; !out.Committed && k < g.profile.Retries && ctx.Err() == nil; k++ {
		// Only CC and ACP conflicts are worth restarting; RCP (quorum
		// unreachable) and client failures will just fail again.
		if out.Cause != model.AbortCC && out.Cause != model.AbortACP {
			break
		}
		select {
		case <-ctx.Done():
			return out, restarts
		case <-time.After(g.backoff(k)):
		}
		restarts++
		out = sub.Submit(ctx, home, ops)
	}
	return out, restarts
}

func summarize(outcomes []model.Outcome, restarts int, elapsed time.Duration) Result {
	r := Result{
		Submitted: len(outcomes),
		Restarts:  restarts,
		ByCause:   make(map[model.AbortCause]int),
		Elapsed:   elapsed,
		Outcomes:  outcomes,
	}
	for _, o := range outcomes {
		if o.Committed {
			r.Committed++
		} else {
			r.Aborted++
			r.ByCause[o.Cause]++
		}
		r.LatencySum += time.Duration(o.LatencyNS)
	}
	return r
}

// Manual composes a single transaction from textual operation specs — the
// manual workload generation panel (Figure A-2). Each spec is
// {Kind: "r", Item: "x"}, {Kind: "w", Item: "x", Value: v} or
// {Kind: "a", Item: "x", Value: delta}.
type Manual struct {
	Kind  string
	Item  model.ItemID
	Value int64
}

// Compose converts manual specs into operations.
func Compose(specs []Manual) ([]model.Op, error) {
	ops := make([]model.Op, 0, len(specs))
	for _, s := range specs {
		switch s.Kind {
		case "r", "R", "read":
			ops = append(ops, model.Read(s.Item))
		case "w", "W", "write":
			ops = append(ops, model.Write(s.Item, s.Value))
		case "a", "A", "add":
			ops = append(ops, model.Add(s.Item, s.Value))
		default:
			return nil, model.Abortf(model.AbortClient, "manual op kind %q (want r, w or a)", s.Kind)
		}
	}
	return ops, nil
}
