// Package core assembles a complete Rainbow instance: the network
// (simulated by default), the name server with its catalog, the Rainbow
// sites, the fault injector, the workload generator hookup and the progress
// monitor. It is the programmatic equivalent of the paper's GUI session:
// configure sites, database, replication scheme and protocols — then submit
// workloads, inject failures, and read the output statistics.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/simnet"
	"repro/internal/site"
	"repro/internal/wire"
	"repro/internal/wlg"
)

// Options configures an instance. Zero values select the demo defaults:
// three sites, three items replicated everywhere, QC + 2PL + 2PC.
type Options struct {
	// Sites lists the site ids; empty selects {S1, S2, S3}.
	Sites []model.SiteID
	// Items maps each item to its initial value, replicated on every site
	// with majority quorums. For custom placements use Catalog instead.
	Items map[model.ItemID]int64
	// Protocols selects RCP/CCP/ACP (Figure 4's panel).
	Protocols schema.Protocols
	// Timeouts bounds protocol waits.
	Timeouts schema.Timeouts
	// Catalog, when non-nil, overrides Sites/Items/Protocols/Timeouts with
	// a fully custom configuration (Figure A-1's replication panel).
	Catalog *schema.Catalog
	// Net configures the network simulator.
	Net simnet.Config
	// Shards sets each site's data-plane shard count (storage shards and
	// lock stripes); <= 0 selects a GOMAXPROCS-derived default.
	Shards int
	// Checkpoint sets each site's checkpoint/compaction policy; zero falls
	// back to the catalog's policy.
	Checkpoint schema.CheckpointPolicy
	// Trace sets each site's transaction-tracing policy as a site-local
	// override; zero fields fall back to the catalog's policy.
	Trace schema.TracePolicy
	// CatalogPoll, when positive, makes each site probe the name server's
	// catalog epoch at this interval and live-reconfigure when it moved —
	// the safety net under the name server's best-effort push (partitioned
	// or crashed sites converge after healing/recovery). Zero disables.
	CatalogPoll time.Duration
}

// Instance is a running Rainbow system.
type Instance struct {
	Net      *simnet.Net
	NS       *nameserver.Server
	Injector *failure.Injector

	sites map[model.SiteID]*site.Site
	ids   []model.SiteID

	catMu sync.Mutex
	cat   *schema.Catalog
}

// New builds and starts an instance.
func New(opts Options) (*Instance, error) {
	cat := opts.Catalog
	if cat == nil {
		cat = schema.NewCatalog()
		ids := opts.Sites
		if len(ids) == 0 {
			ids = []model.SiteID{"S1", "S2", "S3"}
		}
		for _, id := range ids {
			cat.Sites[id] = schema.SiteInfo{ID: id}
		}
		items := opts.Items
		if len(items) == 0 {
			items = map[model.ItemID]int64{"x": 0, "y": 0, "z": 0}
		}
		for item, initial := range items {
			cat.ReplicateEverywhere(item, initial)
		}
		if opts.Protocols != (schema.Protocols{}) {
			cat.Protocols = opts.Protocols
		}
		cat.Timeouts = opts.Timeouts
	}
	if err := cat.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	net := simnet.New(opts.Net)
	ns, err := nameserver.New(net, cat)
	if err != nil {
		return nil, err
	}
	in := &Instance{
		Net:      net,
		NS:       ns,
		Injector: failure.New(net),
		sites:    make(map[model.SiteID]*site.Site),
		ids:      cat.SiteIDs(),
		cat:      cat.Clone(),
	}
	for _, id := range in.ids {
		st, err := site.New(site.Config{
			ID: id, Net: net, Shards: opts.Shards,
			Checkpoint: opts.Checkpoint, Trace: opts.Trace,
			CatalogPoll: opts.CatalogPoll,
		})
		if err != nil {
			in.Close()
			return nil, err
		}
		in.sites[id] = st
		in.Injector.Register(id, st)
	}
	return in, nil
}

// Close shuts the instance down.
func (in *Instance) Close() {
	for _, st := range in.sites {
		st.Close()
	}
	if in.NS != nil {
		in.NS.Close()
	}
}

// SiteIDs returns the instance's sites in sorted order.
func (in *Instance) SiteIDs() []model.SiteID {
	out := make([]model.SiteID, len(in.ids))
	copy(out, in.ids)
	return out
}

// Site returns a site by id.
func (in *Instance) Site(id model.SiteID) (*site.Site, bool) {
	s, ok := in.sites[id]
	return s, ok
}

// Catalog returns the instance's configuration.
func (in *Instance) Catalog() *schema.Catalog {
	in.catMu.Lock()
	defer in.catMu.Unlock()
	return in.cat.Clone()
}

// UpdateCatalog installs a new catalog version at runtime: the name server
// validates, epoch-stamps and pushes it (a nonzero Epoch on the submitted
// catalog is a compare-and-set token — see nameserver.SetCatalog), and each
// live site is reconfigured in place — no restart, committed data carried
// across re-sharding. The site set is fixed for an instance's lifetime;
// adding or removing sites needs a new instance. Crashed sites are skipped;
// they converge through their catalog poll after recovery (Options.
// CatalogPoll) or stay on their old epoch if polling is off. Returns the
// stamped epoch.
func (in *Instance) UpdateCatalog(cat *schema.Catalog) (uint64, error) {
	cur := in.Catalog()
	if len(cat.Sites) != len(cur.Sites) {
		return 0, fmt.Errorf("core: the site set is fixed at instance creation")
	}
	for id := range cat.Sites {
		if _, ok := in.sites[id]; !ok {
			return 0, fmt.Errorf("core: the site set is fixed at instance creation (unknown site %s)", id)
		}
	}
	if err := in.NS.SetCatalog(cat); err != nil {
		return 0, err
	}
	stamped := in.NS.Catalog()
	in.catMu.Lock()
	// A concurrent UpdateCatalog may have stamped (and cached) a newer
	// epoch between our SetCatalog and the Catalog() read; never regress.
	if stamped.Epoch > in.cat.Epoch {
		in.cat = stamped.Clone()
	}
	in.catMu.Unlock()
	// The name server already pushed over the (simulated) wire; the direct
	// calls below make the common no-fault path deterministic for callers
	// that reconfigure and immediately submit load. Stale-epoch rejects
	// mean the push won the race — fine either way.
	for _, id := range in.ids {
		st := in.sites[id]
		if st.Crashed() {
			continue
		}
		err := st.Reconfigure(stamped.Clone())
		if err != nil && !errors.Is(err, site.ErrStaleEpoch) && !st.Crashed() {
			// A site that crashed mid-call converges later like any other
			// crashed site; only a live site's rebuild failure surfaces.
			return stamped.Epoch, err
		}
	}
	return stamped.Epoch, nil
}

// WaitEpoch polls until every live site runs catalog epoch at least e or
// the timeout expires, returning whether they all converged. Crashed sites
// are ignored (they converge after recovery via their poll loop).
func (in *Instance) WaitEpoch(e uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		converged := true
		for _, id := range in.ids {
			st := in.sites[id]
			if !st.Crashed() && st.Epoch() < e {
				converged = false
				break
			}
		}
		if converged {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Submit implements wlg.Submitter: execute one transaction at home.
func (in *Instance) Submit(ctx context.Context, home model.SiteID, ops []model.Op) model.Outcome {
	st, ok := in.sites[home]
	if !ok {
		return model.Outcome{Committed: false, Cause: model.AbortClient, HomeSite: home}
	}
	return st.Execute(ctx, ops)
}

// SubmitManual composes and executes a manual transaction (Figure A-2).
func (in *Instance) SubmitManual(ctx context.Context, home model.SiteID, specs []wlg.Manual) (model.Outcome, error) {
	ops, err := wlg.Compose(specs)
	if err != nil {
		return model.Outcome{}, err
	}
	return in.Submit(ctx, home, ops), nil
}

// RunWorkload runs a simulated workload. Empty profile fields are filled
// from the instance: all sites, all items.
func (in *Instance) RunWorkload(ctx context.Context, profile wlg.Profile) wlg.Result {
	if len(profile.Sites) == 0 {
		profile.Sites = in.SiteIDs()
	}
	if len(profile.Items) == 0 {
		profile.Items = in.Catalog().ItemIDs()
	}
	return wlg.New(profile).Run(ctx, in)
}

// Report gathers the cluster-wide statistics (the Figure-5 panel data).
func (in *Instance) Report() monitor.Report {
	var rep monitor.Report
	for _, id := range in.ids {
		rep.Sites = append(rep.Sites, in.sites[id].Stats())
	}
	ns := in.Net.Stats()
	rep.Net = monitor.NetStats{
		Sent: ns.Sent, Delivered: ns.Delivered, Dropped: ns.Dropped, Bytes: ns.Bytes,
		CodecBinary: ns.CodecBinary, CodecGob: ns.CodecGob,
	}
	return rep
}

// ResetStats zeroes all site statistics and network counters, starting a
// fresh measurement window.
func (in *Instance) ResetStats() {
	for _, st := range in.sites {
		st.ResetStats()
	}
	in.Net.ResetStats()
}

// History merges all sites' execution histories.
func (in *Instance) History() []history.Event {
	var recs []*history.Recorder
	for _, id := range in.ids {
		recs = append(recs, in.sites[id].HistoryRecorder())
	}
	return history.Merge(recs...)
}

// CheckSerializable verifies that the committed transactions form a
// conflict-serializable global history.
func (in *Instance) CheckSerializable(committed map[model.TxID]bool) error {
	return history.CheckSerializable(in.History(), committed)
}

// CommittedSet extracts the committed transaction ids from outcomes.
func CommittedSet(outcomes []model.Outcome) map[model.TxID]bool {
	m := make(map[model.TxID]bool)
	for _, o := range outcomes {
		if o.Committed {
			m[o.Tx] = true
		}
	}
	return m
}

// Orphans sums the currently blocked in-doubt transactions across sites.
func (in *Instance) Orphans() int {
	n := 0
	for _, st := range in.sites {
		if !st.Crashed() {
			n += st.InDoubtCount()
		}
	}
	return n
}

// WaitOrphansDrained polls until no site holds in-doubt transactions or the
// timeout expires, returning whether they drained. Used by the E5
// experiments to measure 3PC's non-blocking termination against 2PC.
func (in *Instance) WaitOrphansDrained(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if in.Orphans() == 0 {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return in.Orphans() == 0
}

// Ping checks a site's liveness through the network (a monitor probe).
func (in *Instance) Ping(ctx context.Context, id model.SiteID) error {
	probe, err := wire.NewPeer(in.Net, model.SiteID(fmt.Sprintf("@probe-%d", time.Now().UnixNano())), nil)
	if err != nil {
		return err
	}
	defer probe.Close()
	return probe.Call(ctx, id, wire.KindPing, &wire.PingReq{}, nil)
}
