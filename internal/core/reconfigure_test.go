package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/schema"
)

// TestUpdateCatalogReshardsCluster: an epoch bump through the instance API
// re-shards every site live — no restart, committed data readable after,
// epoch converged everywhere (push + direct reconfigure).
func TestUpdateCatalogReshardsCluster(t *testing.T) {
	in, err := New(Options{Items: map[model.ItemID]int64{"x": 1, "y": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	if out := in.Submit(ctx, "S1", []model.Op{model.Write("x", 50)}); !out.Committed {
		t.Fatalf("write: %+v", out)
	}

	cat := in.Catalog()
	cat.Shards = 8
	epoch, err := in.UpdateCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("epoch not stamped")
	}
	if !in.WaitEpoch(epoch, 2*time.Second) {
		t.Fatal("sites did not converge on the new epoch")
	}
	for _, id := range in.SiteIDs() {
		st, _ := in.Site(id)
		if got := st.Store().ShardCount(); got != 8 {
			t.Errorf("site %s shard count = %d, want 8", id, got)
		}
	}
	out := in.Submit(ctx, "S2", []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 50 {
		t.Fatalf("post-reshard read = %+v, want x=50", out)
	}
}

// TestUpdateCatalogCASRejectsStale: the instance surface propagates the
// name server's compare-and-set semantics.
func TestUpdateCatalogCASRejectsStale(t *testing.T) {
	in, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	for _, shards := range []int{4, 8} {
		cat := in.Catalog()
		cat.Shards = shards
		cat.Epoch = 0 // unconditional
		if _, err := in.UpdateCatalog(cat); err != nil {
			t.Fatal(err)
		}
	}
	stale := in.Catalog()
	stale.Epoch-- // the token an admin saw before the second update (nonzero: a real CAS)
	if _, err := in.UpdateCatalog(stale); err == nil {
		t.Fatal("stale CAS update accepted")
	}
}

// TestUpdateCatalogRejectsSiteSetChange: sites are fixed for an instance's
// lifetime.
func TestUpdateCatalogRejectsSiteSetChange(t *testing.T) {
	in, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	cat := in.Catalog()
	cat.Sites["S9"] = schema.SiteInfo{ID: "S9"}
	if _, err := in.UpdateCatalog(cat); err == nil {
		t.Fatal("site-set change accepted")
	}
}

// TestCrashedSiteConvergesViaPoll: a site that is down during an epoch bump
// misses both the push and the direct call; after recovery its catalog poll
// must bring it to the new epoch and shard count.
func TestCrashedSiteConvergesViaPoll(t *testing.T) {
	in, err := New(Options{CatalogPoll: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	if out := in.Submit(ctx, "S1", []model.Op{model.Write("x", 7)}); !out.Committed {
		t.Fatalf("write: %+v", out)
	}
	if err := in.Injector.Crash("S3"); err != nil {
		t.Fatal(err)
	}
	cat := in.Catalog()
	cat.Shards = 8
	epoch, err := in.UpdateCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Injector.Recover("S3"); err != nil {
		t.Fatal(err)
	}
	s3, _ := in.Site("S3")
	deadline := time.Now().Add(3 * time.Second)
	for s3.Epoch() < epoch && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s3.Epoch() < epoch {
		t.Fatalf("S3 stuck at epoch %d, want >= %d (poll did not converge)", s3.Epoch(), epoch)
	}
	if got := s3.Store().ShardCount(); got != 8 {
		t.Errorf("S3 shard count after poll = %d, want 8", got)
	}
	out := in.Submit(ctx, "S3", []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 7 {
		t.Fatalf("post-poll read at S3 = %+v, want x=7", out)
	}
}
