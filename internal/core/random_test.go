package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/wlg"
)

// TestRandomizedWorkloadsStaySerializable is the repository's widest
// property test: random protocol combinations, random cluster shapes and
// random workload profiles, each run checked for (a) conflict
// serializability of the committed global history and (b) replica-read
// convergence — a final read must observe the value of SOME committed
// write (or the initial value), for every item.
func TestRandomizedWorkloadsStaySerializable(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short mode")
	}
	rcps := []string{"rowa", "qc"}
	ccps := []string{"2pl", "tso", "mvtso"}
	acps := []string{"2pc", "3pc"}

	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial) + 77))
			protocols := schema.Protocols{
				RCP: rcps[rng.Intn(len(rcps))],
				CCP: ccps[rng.Intn(len(ccps))],
				ACP: acps[rng.Intn(len(acps))],
			}
			nSites := 2 + rng.Intn(3) // 2..4
			nItems := 2 + rng.Intn(4) // 2..5
			sites := make([]model.SiteID, nSites)
			for i := range sites {
				sites[i] = model.SiteID(fmt.Sprintf("S%d", i+1))
			}
			items := make(map[model.ItemID]int64, nItems)
			for i := 0; i < nItems; i++ {
				items[model.ItemID(fmt.Sprintf("i%d", i))] = int64(i * 10)
			}
			in, err := New(Options{
				Sites: sites, Items: items, Protocols: protocols,
				Timeouts: schema.Timeouts{
					Op: time.Second, Vote: time.Second, Ack: 500 * time.Millisecond,
					Lock: 200 * time.Millisecond, OrphanResolve: 50 * time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer in.Close()

			res := in.RunWorkload(context.Background(), wlg.Profile{
				Transactions: 30 + rng.Intn(30),
				MPL:          1 + rng.Intn(6),
				OpsPerTx:     1 + rng.Intn(4),
				ReadFraction: rng.Float64(),
				Retries:      3,
				Seed:         int64(trial) + 1,
			})
			t.Logf("%+v: %d/%d committed (causes %v)", protocols, res.Committed, res.Submitted, res.ByCause)

			if err := in.CheckSerializable(CommittedSet(res.Outcomes)); err != nil {
				t.Fatalf("protocols %+v: %v", protocols, err)
			}

			// Replica-read convergence: the final read of each item returns a
			// value some committed transaction wrote (or the initial value).
			legal := make(map[model.ItemID]map[int64]bool, nItems)
			for item, init := range items {
				legal[item] = map[int64]bool{init: true}
			}
			for _, o := range res.Outcomes {
				_ = o
			}
			for _, e := range in.History() {
				if e.Kind == model.OpWrite && CommittedSet(res.Outcomes)[e.Tx] {
					legal[e.Item][e.Value] = true
				}
			}
			ops := make([]model.Op, 0, nItems)
			for item := range items {
				ops = append(ops, model.Read(item))
			}
			// Stragglers from the just-finished workload may hold CC state
			// for up to a lock timeout; retry the audit briefly. A genuine
			// leak keeps failing past the retries.
			var final model.Outcome
			for attempt := 0; attempt < 5; attempt++ {
				final = in.Submit(context.Background(), sites[0], ops)
				if final.Committed {
					break
				}
				time.Sleep(150 * time.Millisecond)
			}
			if !final.Committed {
				t.Fatalf("final audit read aborted after retries: %+v", final)
			}
			for item, v := range final.Reads {
				if !legal[item][v] {
					t.Errorf("protocols %+v: item %s converged to %d, never committed", protocols, item, v)
				}
			}
		})
	}
}
