package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/wlg"
)

func newInstance(t *testing.T, opts Options) *Instance {
	t.Helper()
	if opts.Timeouts == (schema.Timeouts{}) {
		opts.Timeouts = schema.Timeouts{
			Op: time.Second, Vote: time.Second, Ack: 500 * time.Millisecond,
			Lock: 300 * time.Millisecond, OrphanResolve: 50 * time.Millisecond,
		}
	}
	in, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(in.Close)
	return in
}

func TestDefaultsAndSubmit(t *testing.T) {
	in := newInstance(t, Options{})
	ids := in.SiteIDs()
	if len(ids) != 3 || ids[0] != "S1" {
		t.Errorf("sites = %v", ids)
	}
	out := in.Submit(context.Background(), "S1", []model.Op{model.Write("x", 7), model.Read("x")})
	if !out.Committed || out.Reads["x"] != 7 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestSubmitUnknownHome(t *testing.T) {
	in := newInstance(t, Options{})
	out := in.Submit(context.Background(), "nope", nil)
	if out.Committed || out.Cause != model.AbortClient {
		t.Errorf("outcome = %+v", out)
	}
}

func TestSubmitManual(t *testing.T) {
	in := newInstance(t, Options{})
	out, err := in.SubmitManual(context.Background(), "S2", []wlg.Manual{
		{Kind: "w", Item: "y", Value: 42},
		{Kind: "r", Item: "y"},
	})
	if err != nil || !out.Committed || out.Reads["y"] != 42 {
		t.Errorf("outcome = %+v, err = %v", out, err)
	}
	if _, err := in.SubmitManual(context.Background(), "S2", []wlg.Manual{{Kind: "z"}}); err == nil {
		t.Error("invalid manual spec accepted")
	}
}

func TestRunWorkloadFillsDefaults(t *testing.T) {
	in := newInstance(t, Options{})
	res := in.RunWorkload(context.Background(), wlg.Profile{Transactions: 30, MPL: 3, Retries: 3})
	if res.Submitted != 30 {
		t.Errorf("submitted = %d", res.Submitted)
	}
	if res.Committed == 0 {
		t.Error("nothing committed")
	}
}

func TestReportAndRender(t *testing.T) {
	in := newInstance(t, Options{})
	in.RunWorkload(context.Background(), wlg.Profile{Transactions: 20, MPL: 2, Retries: 2})
	rep := in.Report()
	tot := rep.Totals()
	if tot.Began == 0 || tot.Committed == 0 {
		t.Errorf("totals = %+v", tot)
	}
	if rep.Net.Delivered == 0 {
		t.Error("no network traffic recorded")
	}
	text := rep.Render()
	if !strings.Contains(text, "commit rate:") {
		t.Error("render missing stats")
	}
}

func TestResetStats(t *testing.T) {
	in := newInstance(t, Options{})
	in.RunWorkload(context.Background(), wlg.Profile{Transactions: 10})
	in.ResetStats()
	rep := in.Report()
	if rep.Totals().Began != 0 || rep.Net.Delivered != 0 {
		t.Errorf("reset failed: %+v", rep.Totals())
	}
}

func TestWorkloadHistorySerializable(t *testing.T) {
	in := newInstance(t, Options{})
	res := in.RunWorkload(context.Background(), wlg.Profile{
		Transactions: 40, MPL: 4, ReadFraction: 0.5, Retries: 3, HotItems: 2,
	})
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if err := in.CheckSerializable(CommittedSet(res.Outcomes)); err != nil {
		t.Error(err)
	}
}

func TestCustomCatalogPartialReplication(t *testing.T) {
	cat := schema.NewCatalog()
	for _, id := range []model.SiteID{"A", "B", "C", "D"} {
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	cat.PlaceCopies("x", 100, "A", "B", "C") // not on D
	cat.PlaceCopies("y", 200, "D")           // only on D
	cat.Timeouts = schema.Timeouts{Lock: 300 * time.Millisecond, OrphanResolve: 50 * time.Millisecond}
	in := newInstance(t, Options{Catalog: cat})

	// A transaction homed at D reads x (remote copies) and y (local only).
	out := in.Submit(context.Background(), "D", []model.Op{model.Read("x"), model.Read("y")})
	if !out.Committed || out.Reads["x"] != 100 || out.Reads["y"] != 200 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestInvalidCatalogRejected(t *testing.T) {
	cat := schema.NewCatalog()
	cat.Protocols.CCP = "nope"
	if _, err := New(Options{Catalog: cat}); err == nil {
		t.Error("invalid catalog accepted")
	}
}

func TestCrashRecoverThroughInjector(t *testing.T) {
	in := newInstance(t, Options{})
	if out := in.Submit(context.Background(), "S1", []model.Op{model.Write("x", 5)}); !out.Committed {
		t.Fatalf("setup failed: %+v", out)
	}
	if err := in.Injector.Crash("S2"); err != nil {
		t.Fatal(err)
	}
	// QC keeps committing with 2 of 3 sites.
	if out := in.Submit(context.Background(), "S1", []model.Op{model.Write("x", 6)}); !out.Committed {
		t.Errorf("write with minority down failed: %+v", out)
	}
	if err := in.Injector.Recover("S2"); err != nil {
		t.Fatal(err)
	}
	// The recovered site serves again.
	if out := in.Submit(context.Background(), "S2", []model.Op{model.Read("x")}); !out.Committed || out.Reads["x"] != 6 {
		t.Errorf("read after recovery = %+v", out)
	}
}

func TestPing(t *testing.T) {
	in := newInstance(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := in.Ping(ctx, "S1"); err != nil {
		t.Errorf("ping live site: %v", err)
	}
	in.Injector.Crash("S3")
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if err := in.Ping(ctx2, "S3"); err == nil {
		t.Error("ping of crashed site succeeded")
	}
}

func TestOrphansDrainAfterCoordinatorRecovery2PC(t *testing.T) {
	in := newInstance(t, Options{Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"}})

	// Run transactions while crashing the coordinator site mid-flight to
	// strand participants in-doubt, then recover and watch orphans drain.
	done := make(chan model.Outcome, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			done <- in.Submit(context.Background(), "S1", []model.Op{model.Write("x", int64(i))})
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	in.Injector.Crash("S1")
	for i := 0; i < 8; i++ {
		<-done
	}
	in.Injector.Recover("S1")
	if !in.WaitOrphansDrained(5 * time.Second) {
		t.Errorf("orphans did not drain after coordinator recovery: %d left", in.Orphans())
	}
}

func TestCommittedSet(t *testing.T) {
	outcomes := []model.Outcome{
		{Tx: model.TxID{Site: "A", Seq: 1}, Committed: true},
		{Tx: model.TxID{Site: "A", Seq: 2}, Committed: false},
	}
	m := CommittedSet(outcomes)
	if len(m) != 1 || !m[model.TxID{Site: "A", Seq: 1}] {
		t.Errorf("set = %v", m)
	}
}
