package core

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/schema"
)

// TestInjectorCrashRecoverWithCheckpoints drives the checkpoint subsystem
// through the fault injector exactly as a simnet experiment would: sites on
// in-memory WALs checkpoint, crash, and recover with bounded replay.
func TestInjectorCrashRecoverWithCheckpoints(t *testing.T) {
	inst, err := New(Options{
		Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	ctx := context.Background()

	write := func(v int64) {
		out := inst.Submit(ctx, "S1", []model.Op{model.Write("x", v)})
		if !out.Committed {
			t.Fatalf("write %d did not commit: %+v", v, out)
		}
	}
	for v := int64(1); v <= 10; v++ {
		write(v)
	}
	s1, _ := inst.Site("S1")
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for v := int64(11); v <= 20; v++ {
		write(v)
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if cs := s1.CheckpointStats(); cs.Checkpoints != 2 {
		t.Fatalf("checkpoint stats = %+v", cs)
	}

	if err := inst.Injector.Crash("S1"); err != nil {
		t.Fatal(err)
	}
	if err := inst.Injector.Recover("S1"); err != nil {
		t.Fatal(err)
	}
	out := inst.Submit(ctx, "S2", []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 20 {
		t.Fatalf("post-recovery quorum read = %+v, want x=20", out)
	}
	stats := s1.Stats()
	if stats.RecoveryRecords == 0 || stats.RecoveryRecords >= 40 {
		t.Errorf("S1 recovery replayed %d records, want bounded (0 < n < 40)", stats.RecoveryRecords)
	}
	// The monitor report surfaces the durability counters.
	rep := inst.Report()
	if rep.Totals().Checkpoints == 0 {
		t.Error("report lost the checkpoint counters")
	}
}
