package cc

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// TestTwoPLStripedIntentsConcurrent hammers the striped intent buffer from
// many goroutines (run under -race in CI): disjoint single-item
// transactions read their own intents back and commit/abort without a
// global mutex serializing them.
func TestTwoPLStripedIntentsConcurrent(t *testing.T) {
	const nItems, workers, rounds = 64, 8, 50
	items := make(map[model.ItemID]int64, nItems)
	ids := make([]model.ItemID, nItems)
	for i := range ids {
		ids[i] = model.ItemID(fmt.Sprintf("i%03d", i))
		items[ids[i]] = 0
	}
	store := storage.NewSharded(8)
	store.Init(items)
	m := NewTwoPL(store, Options{Shards: 8})
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tx := model.TxID{Site: model.SiteID(fmt.Sprintf("W%d", w)), Seq: uint64(r + 1)}
				item := ids[(w*rounds+r)%nItems]
				want := int64(w*1000 + r)
				if _, err := m.PreWrite(ctx, tx, model.Timestamp{}, item, want); err != nil {
					t.Errorf("PreWrite: %v", err)
					return
				}
				got, _, err := m.Read(ctx, tx, model.Timestamp{}, item)
				if err != nil {
					t.Errorf("Read: %v", err)
					return
				}
				if got != want {
					t.Errorf("read-your-writes through stripes: got %d, want %d", got, want)
					return
				}
				if r%2 == 0 {
					if err := m.Commit(tx, []model.WriteRecord{{Item: item, Value: want, Version: model.Version(w*rounds + r + 1)}}); err != nil {
						t.Errorf("Commit: %v", err)
						return
					}
				} else {
					m.Abort(tx)
				}
			}
		}(w)
	}
	wg.Wait()

	s := m.Stats()
	if s.Reads != workers*rounds || s.PreWrites != workers*rounds {
		t.Errorf("stats = %+v, want %d reads and pre-writes", s, workers*rounds)
	}
}

// TestTwoPLAbortClearsIntentsAcrossStripes writes intents on items that
// hash to different stripes and verifies Abort sweeps all of them.
func TestTwoPLAbortClearsIntentsAcrossStripes(t *testing.T) {
	items := map[model.ItemID]int64{}
	var ids []model.ItemID
	for i := 0; i < 16; i++ {
		id := model.ItemID(fmt.Sprintf("k%02d", i))
		ids = append(ids, id)
		items[id] = 7
	}
	store := storage.NewSharded(8)
	store.Init(items)
	m := NewTwoPL(store, Options{Shards: 8})
	ctx := context.Background()
	tx := model.TxID{Site: "A", Seq: 1}
	for _, id := range ids {
		if _, err := m.PreWrite(ctx, tx, model.Timestamp{}, id, 99); err != nil {
			t.Fatal(err)
		}
	}
	m.Abort(tx)
	// A new transaction must see the stored values, not stale intents.
	tx2 := model.TxID{Site: "A", Seq: 2}
	for _, id := range ids {
		v, _, err := m.Read(ctx, tx2, model.Timestamp{}, id)
		if err != nil {
			t.Fatal(err)
		}
		if v != 7 {
			t.Fatalf("item %s: read %d after abort, want 7", id, v)
		}
	}
	m.Abort(tx2)
}
