package cc

import (
	"sync"
	"time"

	"repro/internal/model"
)

// holderShards stripes the holder tracker by transaction-id hash so the
// first-touch bookkeeping never becomes a global mutex on the CC hot path.
const holderShards = 16

// holderTracker records when each transaction first acquired CC state at
// this site, shared by all three managers behind Manager.Holders (striped for 2PL's
// lock-free hot path; TSO/MVTSO call it under their own mutex). touch is
// one striped map insert per (tx, first op); drop runs on commit/abort.
type holderTracker struct {
	shards [holderShards]struct {
		mu    sync.Mutex
		first map[model.TxID]time.Time
	}
}

func newHolderTracker() *holderTracker {
	t := &holderTracker{}
	for i := range t.shards {
		t.shards[i].first = make(map[model.TxID]time.Time)
	}
	return t
}

func (t *holderTracker) shardOf(tx model.TxID) *struct {
	mu    sync.Mutex
	first map[model.TxID]time.Time
} {
	h := uint32(tx.Seq)
	for i := 0; i < len(tx.Site); i++ {
		h = h*31 + uint32(tx.Site[i])
	}
	return &t.shards[h%holderShards]
}

// touch records tx's first CC acquisition (later touches keep the original
// timestamp).
func (t *holderTracker) touch(tx model.TxID) {
	sh := t.shardOf(tx)
	sh.mu.Lock()
	if _, ok := sh.first[tx]; !ok {
		sh.first[tx] = time.Now()
	}
	sh.mu.Unlock()
}

// drop forgets tx (commit or abort released its CC state).
func (t *holderTracker) drop(tx model.TxID) {
	sh := t.shardOf(tx)
	sh.mu.Lock()
	delete(sh.first, tx)
	sh.mu.Unlock()
}

// holders lists transactions first touched longer than age ago.
func (t *holderTracker) holders(age time.Duration) []model.TxID {
	cutoff := time.Now().Add(-age)
	var out []model.TxID
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for tx, at := range sh.first {
			if at.Before(cutoff) {
				out = append(out, tx)
			}
		}
		sh.mu.Unlock()
	}
	return out
}
