// Package cc implements Rainbow's concurrency control protocols (CCPs).
// Each Rainbow site runs one Manager guarding its local copies: every
// remote read or pre-write sent by a replication control protocol passes
// through it (paper §2.1: "copies are read ... or pre-written ... through
// CCP").
//
// Three managers are provided, selectable by name from the catalog:
//
//   - "2pl"   — strict two-phase locking over internal/lock
//   - "tso"   — basic timestamp ordering with strict pre-write intents
//   - "mvtso" — multi-version timestamp ordering (the paper's suggested
//     term-project extension)
//
// A Manager validates and buffers operations; writes become durable and
// visible only when the atomic commit protocol calls Commit with the final
// write records (which carry coordinator-assigned install versions).
package cc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Manager is the per-site CCP interface.
type Manager interface {
	// Name returns the protocol name ("2pl", "tso", "mvtso").
	Name() string

	// Read returns the current value and version of the site's copy of
	// item on behalf of tx. It may block (2PL queueing, TSO intent gating)
	// and may abort with cause CC.
	Read(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error)

	// PreWrite validates a write intent and returns the copy's current
	// version number (the QC coordinator derives the install version from
	// the quorum maximum). The value is buffered, not applied.
	PreWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error)

	// TryRead is Read's non-blocking variant, used by the per-shard
	// pipeline sequencers (which must never park on CC waits): it grants or
	// rejects exactly like Read when no wait is needed, and returns
	// ErrWouldBlock — leaving no CC state behind — where Read would block,
	// so the caller can spill the operation to the blocking path.
	TryRead(tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error)

	// TryPreWrite is PreWrite's non-blocking variant; see TryRead.
	TryPreWrite(tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error)

	// PreAdd validates a commutative blind-add intent (delta is merged into
	// the copy at commit, never observed) and returns the copy's current
	// version. Because blind adds commute, a manager may admit concurrent
	// adds to the same item without mutual exclusion: 2PL's hot-item split
	// execution admits them lock-free once an item crosses the contention
	// threshold. The intent is buffered like a pre-write and carries the
	// delta flag into HoldsIntents/Commit/Abort.
	PreAdd(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error)

	// TryPreAdd is PreAdd's non-blocking variant; see TryRead. Unlike
	// TryPreWrite it may succeed under contention (split admission), which is
	// exactly the hot-key case the pipeline sequencers care about.
	TryPreAdd(tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error)

	// Commit installs the transaction's write records into the store and
	// releases all CC state held for tx.
	Commit(tx model.TxID, writes []model.WriteRecord) error

	// Abort discards tx's intents and releases all CC state.
	Abort(tx model.TxID)

	// Reinstate re-protects the write set of an in-doubt transaction during
	// crash recovery, before the site serves new traffic.
	Reinstate(tx model.TxID, ts model.Timestamp, writes []model.WriteRecord) error

	// HoldsIntents reports whether the manager currently buffers a
	// pre-write intent from tx for every listed item. Prepare-time
	// validation: a crash recovery or live reconfiguration between
	// pre-write and prepare discards intents (and their protection), and
	// preparing such a transaction could serialize two conflicting writers
	// onto the same install version — the site votes no instead.
	HoldsIntents(tx model.TxID, items []model.ItemID) bool

	// Holders lists transactions that have held CC state here (locks,
	// buffered intents) for longer than age without being committed or
	// aborted. The site's CC janitor feeds it: state stranded by a home
	// site's real process death (the in-process release retries die with
	// the process) is found by its own age, and the holder's home is
	// presumed-abort-queried to free it.
	Holders(age time.Duration) []model.TxID

	// Stats reports CC event counters for the progress monitor.
	Stats() Stats
}

// Stats counts CC events.
type Stats struct {
	Reads      uint64
	PreWrites  uint64
	Rejections uint64 // timestamp rejections (TSO/MVTSO)
	Deadlocks  uint64 // 2PL only
	Timeouts   uint64 // lock or intent wait timeouts
	Waits      uint64
	Adds       uint64 // blind-add intents admitted (all managers)
	SplitAdds  uint64 // adds admitted lock-free through a split slot (2PL)
	Splits     uint64 // hot items moved into split execution (2PL)
	Drains     uint64 // split items drained back to locking (2PL)
}

// Options configures manager construction.
type Options struct {
	// LockTimeout bounds 2PL lock waits and TSO intent waits. Zero means
	// DefaultLockTimeout.
	LockTimeout time.Duration
	// DisableDeadlockDetection leaves 2PL deadlocks to timeouts.
	DisableDeadlockDetection bool
	// Shards stripes the 2PL lock table; <= 0 selects the
	// GOMAXPROCS-derived default (matches the storage shard knob).
	Shards int
	// Tracer, when set, receives lock/intent wait durations (the always-on
	// lock_wait stage histogram) and attaches wait spans to sampled
	// transactions; only actual waits pay for it.
	Tracer *trace.Tracer
	// NoSplit disables 2PL's hot-item split execution: blind adds then take
	// exclusive locks exactly like absolute writes (the cc_no_split /
	// -hot-split=false ablation baseline).
	NoSplit bool
	// SplitThreshold is the number of contended blind-add admissions an item
	// must accumulate before 2PL splits it; <= 0 selects
	// DefaultSplitThreshold.
	SplitThreshold int
}

// DefaultLockTimeout is the default bound on CC waits; it doubles as the
// distributed-deadlock safety net.
const DefaultLockTimeout = 2 * time.Second

// ErrWouldBlock is returned by TryRead/TryPreWrite where the blocking
// variant would park (a lock queue, a pending foreign intent). It is not an
// abort: the operation left no state behind and may be retried through the
// blocking path.
var ErrWouldBlock = errors.New("cc: would block")

// ErrTxFinished is returned (wrapped in an AbortCC) for operations arriving
// on behalf of a transaction this manager already committed or aborted.
// Unlike ErrWouldBlock it is terminal: retrying through the blocking path
// can never succeed (transaction ids are never reused), so the pipeline
// sequencers must refuse the operation instead of spilling it to burn a
// full lock timeout.
var ErrTxFinished = &model.AbortError{Cause: model.AbortCC, Reason: "transaction already finished at this site"}

// DefaultSplitThreshold is the contended-add count at which 2PL moves an
// item into split execution.
const DefaultSplitThreshold = 8

// waitStart stamps the beginning of an intent-gate wait when a tracer is
// attached (zero otherwise, so the fast path never reads the clock).
func (o Options) waitStart() time.Time {
	if o.Tracer == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeWait records one completed intent-gate wait: the always-on
// lock_wait histogram plus a span on the transaction's sampled trace, if
// any. No-op when no tracer is attached.
func (o Options) observeWait(ctx context.Context, item model.ItemID, start time.Time) {
	if o.Tracer == nil {
		return
	}
	d := time.Since(start)
	o.Tracer.Observe(trace.StageLockWait, d)
	trace.FromContext(ctx).Record(trace.StageLockWait, start, d, string(item))
}

// New constructs a manager by protocol name over the site's store.
func New(name string, store *storage.Store, opts Options) (Manager, error) {
	if opts.LockTimeout == 0 {
		opts.LockTimeout = DefaultLockTimeout
	}
	switch name {
	case "2pl", "2PL", "":
		return NewTwoPL(store, opts), nil
	case "tso", "TSO":
		return NewTSO(store, opts), nil
	case "mvtso", "MVTSO":
		return NewMVTSO(store, opts), nil
	default:
		return nil, fmt.Errorf("cc: unknown concurrency control protocol %q", name)
	}
}

// Names lists the available CCP names.
func Names() []string { return []string{"2pl", "tso", "mvtso"} }
