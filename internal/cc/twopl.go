package cc

import (
	"context"
	"sync"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/storage"
)

// TwoPL is strict two-phase locking: reads take shared locks, pre-writes
// take exclusive locks, and every lock is held until Commit or Abort. With
// the lock manager's waits-for-graph detection, local deadlocks abort the
// requester immediately; distributed deadlocks fall to the wait timeout.
type TwoPL struct {
	store *storage.Store
	locks *lock.Manager

	mu      sync.Mutex
	intents map[model.TxID]map[model.ItemID]int64
	stats   Stats
}

// NewTwoPL builds the 2PL manager over the site's store.
func NewTwoPL(store *storage.Store, opts Options) *TwoPL {
	return &TwoPL{
		store: store,
		locks: lock.New(lock.Options{
			Timeout:                  opts.LockTimeout,
			DisableDeadlockDetection: opts.DisableDeadlockDetection,
			Shards:                   opts.Shards,
		}),
		intents: make(map[model.TxID]map[model.ItemID]int64),
	}
}

// Name implements Manager.
func (m *TwoPL) Name() string { return "2pl" }

// Read implements Manager: S-lock then read the copy.
func (m *TwoPL) Read(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	if err := m.acquire(ctx, tx, item, lock.Shared); err != nil {
		return 0, 0, err
	}
	c, ok := m.store.Get(item)
	if !ok {
		return 0, 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.mu.Lock()
	m.stats.Reads++
	val := c.Value
	if own, ok := m.intents[tx][item]; ok {
		val = own // read-your-writes on the buffered intent
	}
	m.mu.Unlock()
	return val, c.Version, nil
}

// PreWrite implements Manager: X-lock, buffer the intent, report the
// current version.
func (m *TwoPL) PreWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	if err := m.acquire(ctx, tx, item, lock.Exclusive); err != nil {
		return 0, err
	}
	c, ok := m.store.Get(item)
	if !ok {
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.mu.Lock()
	if m.intents[tx] == nil {
		m.intents[tx] = make(map[model.ItemID]int64)
	}
	m.intents[tx][item] = value
	m.stats.PreWrites++
	m.mu.Unlock()
	return c.Version, nil
}

func (m *TwoPL) acquire(ctx context.Context, tx model.TxID, item model.ItemID, mode lock.Mode) error {
	return m.locks.Acquire(ctx, tx, item, mode)
}

// Commit implements Manager: install the final records, then release locks
// (strict 2PL order: writes visible before any lock is released).
func (m *TwoPL) Commit(tx model.TxID, writes []model.WriteRecord) error {
	err := m.store.Apply(writes)
	m.mu.Lock()
	delete(m.intents, tx)
	m.mu.Unlock()
	m.locks.ReleaseAll(tx)
	return err
}

// Abort implements Manager.
func (m *TwoPL) Abort(tx model.TxID) {
	m.mu.Lock()
	delete(m.intents, tx)
	m.mu.Unlock()
	m.locks.ReleaseAll(tx)
}

// Reinstate implements Manager: re-acquire exclusive locks for an in-doubt
// transaction during recovery. Recovery runs before the site admits new
// work, so acquisition cannot block.
func (m *TwoPL) Reinstate(tx model.TxID, ts model.Timestamp, writes []model.WriteRecord) error {
	for _, w := range writes {
		if err := m.locks.Acquire(context.Background(), tx, w.Item, lock.Exclusive); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Manager, merging lock-manager counters.
func (m *TwoPL) Stats() Stats {
	m.mu.Lock()
	s := m.stats
	m.mu.Unlock()
	ls := m.locks.Stats()
	s.Waits = ls.Waits
	s.Deadlocks = ls.Deadlocks
	s.Timeouts = ls.Timeouts
	return s
}
