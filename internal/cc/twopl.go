package cc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/shard"
	"repro/internal/storage"
)

// TwoPL is strict two-phase locking: reads take shared locks, pre-writes
// take exclusive locks, and every lock is held until Commit or Abort. With
// the lock manager's waits-for-graph detection, local deadlocks abort the
// requester immediately; distributed deadlocks fall to the wait timeout.
//
// The intent buffer is striped by item hash — the same placement math as
// the lock table and the store — so concurrent transactions touching
// different items never contend on a global mutex anywhere on the 2PL path.
type TwoPL struct {
	store *storage.Store
	locks *lock.Manager

	intents []intentShard
	mask    uint32
	holders *holderTracker

	reads     atomic.Uint64
	preWrites atomic.Uint64
}

// intentShard is one stripe of the buffered write intents, keyed tx → item
// → value. A transaction's intents spread over the stripes of the items it
// wrote.
type intentShard struct {
	mu      sync.Mutex
	intents map[model.TxID]map[model.ItemID]int64
}

// NewTwoPL builds the 2PL manager over the site's store.
func NewTwoPL(store *storage.Store, opts Options) *TwoPL {
	n := shard.Normalize(opts.Shards, lock.MaxShards)
	m := &TwoPL{
		store: store,
		locks: lock.New(lock.Options{
			Timeout:                  opts.LockTimeout,
			DisableDeadlockDetection: opts.DisableDeadlockDetection,
			Shards:                   opts.Shards,
			Tracer:                   opts.Tracer,
		}),
		intents: make([]intentShard, n),
		mask:    uint32(n - 1),
		holders: newHolderTracker(),
	}
	for i := range m.intents {
		m.intents[i].intents = make(map[model.TxID]map[model.ItemID]int64)
	}
	return m
}

func (m *TwoPL) stripeOf(item model.ItemID) *intentShard {
	return &m.intents[shard.Hash(item)&m.mask]
}

// Name implements Manager.
func (m *TwoPL) Name() string { return "2pl" }

// Read implements Manager: S-lock then read the copy.
func (m *TwoPL) Read(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	if err := m.acquire(ctx, tx, item, lock.Shared); err != nil {
		return 0, 0, err
	}
	return m.finishRead(tx, item)
}

// TryRead implements Manager: grant the S-lock on the lock manager's fast
// path or report would-block without queueing.
func (m *TwoPL) TryRead(tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	if err := m.locks.TryAcquire(tx, item, lock.Shared); err != nil {
		return 0, 0, ErrWouldBlock
	}
	m.holders.touch(tx)
	return m.finishRead(tx, item)
}

// finishRead is the post-acquire half of Read: fetch the copy and overlay
// the transaction's own buffered intent (read-your-writes).
func (m *TwoPL) finishRead(tx model.TxID, item model.ItemID) (int64, model.Version, error) {
	c, ok := m.store.Get(item)
	if !ok {
		return 0, 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.reads.Add(1)
	val := c.Value
	sh := m.stripeOf(item)
	sh.mu.Lock()
	if own, ok := sh.intents[tx][item]; ok {
		val = own // read-your-writes on the buffered intent
	}
	sh.mu.Unlock()
	return val, c.Version, nil
}

// PreWrite implements Manager: X-lock, buffer the intent, report the
// current version.
func (m *TwoPL) PreWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	if err := m.acquire(ctx, tx, item, lock.Exclusive); err != nil {
		return 0, err
	}
	return m.finishPreWrite(tx, item, value)
}

// TryPreWrite implements Manager: grant the X-lock on the lock manager's
// fast path or report would-block without queueing.
func (m *TwoPL) TryPreWrite(tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	if err := m.locks.TryAcquire(tx, item, lock.Exclusive); err != nil {
		return 0, ErrWouldBlock
	}
	m.holders.touch(tx)
	return m.finishPreWrite(tx, item, value)
}

// finishPreWrite is the post-acquire half of PreWrite: buffer the intent
// and report the copy's current version.
func (m *TwoPL) finishPreWrite(tx model.TxID, item model.ItemID, value int64) (model.Version, error) {
	c, ok := m.store.Get(item)
	if !ok {
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	sh := m.stripeOf(item)
	sh.mu.Lock()
	if sh.intents[tx] == nil {
		sh.intents[tx] = make(map[model.ItemID]int64)
	}
	sh.intents[tx][item] = value
	sh.mu.Unlock()
	m.preWrites.Add(1)
	return c.Version, nil
}

func (m *TwoPL) acquire(ctx context.Context, tx model.TxID, item model.ItemID, mode lock.Mode) error {
	if err := m.locks.Acquire(ctx, tx, item, mode); err != nil {
		return err
	}
	m.holders.touch(tx)
	return nil
}

// clearIntents discards tx's buffered intents across all stripes (the
// abort path, which has no write set to narrow the sweep).
func (m *TwoPL) clearIntents(tx model.TxID) {
	for i := range m.intents {
		sh := &m.intents[i]
		sh.mu.Lock()
		delete(sh.intents, tx)
		sh.mu.Unlock()
	}
}

// Commit implements Manager: install the final records, then release locks
// (strict 2PL order: writes visible before any lock is released). Intents
// are buffered only for pre-written items, and every pre-written item at
// this site is in the commit's write set, so only the written items'
// stripes need sweeping (deduplicated via a stripe bitmask — stripe count
// is capped at lock.MaxShards = 64).
func (m *TwoPL) Commit(tx model.TxID, writes []model.WriteRecord) error {
	err := m.store.Apply(writes)
	if len(writes) == 0 {
		m.clearIntents(tx)
	} else {
		var mask uint64
		for _, w := range writes {
			mask |= 1 << (shard.Hash(w.Item) & m.mask)
		}
		for i := range m.intents {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			sh := &m.intents[i]
			sh.mu.Lock()
			delete(sh.intents, tx)
			sh.mu.Unlock()
		}
	}
	m.locks.ReleaseAll(tx)
	m.holders.drop(tx)
	return err
}

// Abort implements Manager.
func (m *TwoPL) Abort(tx model.TxID) {
	m.clearIntents(tx)
	m.locks.ReleaseAll(tx)
	m.holders.drop(tx)
}

// Holders implements Manager.
func (m *TwoPL) Holders(age time.Duration) []model.TxID {
	return m.holders.holders(age)
}

// HoldsIntents implements Manager.
func (m *TwoPL) HoldsIntents(tx model.TxID, items []model.ItemID) bool {
	for _, item := range items {
		sh := m.stripeOf(item)
		sh.mu.Lock()
		_, ok := sh.intents[tx][item]
		sh.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// Reinstate implements Manager: re-acquire exclusive locks for an in-doubt
// transaction during recovery. Recovery runs before the site admits new
// work, so acquisition cannot block.
func (m *TwoPL) Reinstate(tx model.TxID, ts model.Timestamp, writes []model.WriteRecord) error {
	for _, w := range writes {
		if err := m.locks.Acquire(context.Background(), tx, w.Item, lock.Exclusive); err != nil {
			return err
		}
	}
	m.holders.touch(tx)
	return nil
}

// Stats implements Manager, merging lock-manager counters.
func (m *TwoPL) Stats() Stats {
	s := Stats{Reads: m.reads.Load(), PreWrites: m.preWrites.Load()}
	ls := m.locks.Stats()
	s.Waits = ls.Waits
	s.Deadlocks = ls.Deadlocks
	s.Timeouts = ls.Timeouts
	return s
}
