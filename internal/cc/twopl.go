package cc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/shard"
	"repro/internal/storage"
)

// TwoPL is strict two-phase locking: reads take shared locks, pre-writes
// take exclusive locks, and every lock is held until Commit or Abort. With
// the lock manager's waits-for-graph detection, local deadlocks abort the
// requester immediately; distributed deadlocks fall to the wait timeout.
//
// The intent buffer is striped by item hash — the same placement math as
// the lock table and the store — so concurrent transactions touching
// different items never contend on a global mutex anywhere on the 2PL path.
//
// Hot-item split execution (Doppel-style) rides on top: blind adds
// (PreAdd/TryPreAdd) normally take exclusive locks like writes, but an item
// whose adds keep failing the lock fast path is moved into a split slot —
// subsequent adds are admitted without any lock (deltas commute, so mutual
// exclusion buys nothing), and their deltas reconcile into the canonical
// copy through the ordinary commit path (WriteRecord.Delta). Reads and
// absolute writes of a split item first acquire their lock, then drain the
// slot — wait for every lock-free admission to commit or abort — restoring
// plain 2PL for the item until adds re-heat it. The splits map is guarded
// by one mutex, but only blind adds on split items, failed fast-path
// acquisitions, and split-item reads/writes ever touch it; the uncontended
// path is gated by a single atomic counter check.
type TwoPL struct {
	store *storage.Store
	locks *lock.Manager
	opts  Options

	intents []intentShard
	mask    uint32
	holders *holderTracker

	// splitMu guards splits, contended, and every splitSlot's fields. Lock
	// order: splitMu may be held when taking a lock-table shard mutex
	// (lock.Manager.Idle), never an intent-stripe mutex, and never the
	// reverse.
	splitMu   sync.Mutex
	splits    map[model.ItemID]*splitSlot
	contended map[model.ItemID]uint32
	// numSplit gates every split check on the non-add paths: when zero (the
	// common case for uniform workloads) reads and writes pay one atomic
	// load and nothing else.
	numSplit atomic.Int32

	// finished tombstones transactions that already committed or aborted
	// here, so late operations fail fast with ErrTxFinished instead of
	// acquiring locks (or burning a spill goroutine's full lock timeout)
	// for a transaction that can never prepare. Entries expire after
	// finishedTTL; the site-level release tombstones remain the durable
	// safety net behind this fast path.
	finished [holderShards]struct {
		mu sync.Mutex
		m  map[model.TxID]time.Time
	}

	reads     atomic.Uint64
	preWrites atomic.Uint64
	adds      atomic.Uint64
	splitAdds atomic.Uint64
	splitCnt  atomic.Uint64
	drainCnt  atomic.Uint64
	addWaits  atomic.Uint64
}

// splitSlot tracks one split item's lock-free blind-add admissions. All
// fields are guarded by TwoPL.splitMu.
type splitSlot struct {
	// active holds the transactions with an admitted, not yet finished
	// blind-add intent on the item.
	active map[model.TxID]bool
	// draining is set by the first reader/writer that needs the item back
	// under locks; admissions stop and drained closes when active empties.
	draining bool
	closed   bool
	drained  chan struct{}
}

// wintent is one buffered write intent: the value (or delta), whether it is
// a commutative blind add, and — for adds admitted lock-free — the split
// slot that tracks it.
type wintent struct {
	value int64
	delta bool
	slot  *splitSlot
}

// intentShard is one stripe of the buffered write intents, keyed tx → item
// → intent. A transaction's intents spread over the stripes of the items it
// wrote.
type intentShard struct {
	mu      sync.Mutex
	intents map[model.TxID]map[model.ItemID]wintent
}

// NewTwoPL builds the 2PL manager over the site's store.
func NewTwoPL(store *storage.Store, opts Options) *TwoPL {
	n := shard.Normalize(opts.Shards, lock.MaxShards)
	if opts.SplitThreshold <= 0 {
		opts.SplitThreshold = DefaultSplitThreshold
	}
	m := &TwoPL{
		store: store,
		locks: lock.New(lock.Options{
			Timeout:                  opts.LockTimeout,
			DisableDeadlockDetection: opts.DisableDeadlockDetection,
			Shards:                   opts.Shards,
			Tracer:                   opts.Tracer,
		}),
		opts:      opts,
		intents:   make([]intentShard, n),
		mask:      uint32(n - 1),
		holders:   newHolderTracker(),
		splits:    make(map[model.ItemID]*splitSlot),
		contended: make(map[model.ItemID]uint32),
	}
	for i := range m.intents {
		m.intents[i].intents = make(map[model.TxID]map[model.ItemID]wintent)
	}
	for i := range m.finished {
		m.finished[i].m = make(map[model.TxID]time.Time)
	}
	return m
}

func (m *TwoPL) stripeOf(item model.ItemID) *intentShard {
	return &m.intents[shard.Hash(item)&m.mask]
}

// Name implements Manager.
func (m *TwoPL) Name() string { return "2pl" }

// finishedTTL bounds how long a finished-transaction tombstone is kept: long
// enough to cover any operation already in flight when the transaction
// finished (a lock timeout plus slack), short enough that the maps stay
// small under churn.
func (m *TwoPL) finishedTTL() time.Duration { return 2 * m.opts.LockTimeout }

// finishedShardOf hashes tx onto a tombstone stripe (same spread as the
// holder tracker).
func (m *TwoPL) finishedShardOf(tx model.TxID) *struct {
	mu sync.Mutex
	m  map[model.TxID]time.Time
} {
	h := uint32(tx.Seq)
	for i := 0; i < len(tx.Site); i++ {
		h = h*31 + uint32(tx.Site[i])
	}
	return &m.finished[h%holderShards]
}

// markFinished tombstones a committed/aborted transaction. Expired entries
// are purged lazily whenever a stripe grows past a bound, so the maps stay
// proportional to recent churn rather than total history.
func (m *TwoPL) markFinished(tx model.TxID) {
	sh := m.finishedShardOf(tx)
	sh.mu.Lock()
	if len(sh.m) > 4096 {
		cutoff := time.Now().Add(-m.finishedTTL())
		for t, at := range sh.m {
			if at.Before(cutoff) {
				delete(sh.m, t)
			}
		}
	}
	sh.m[tx] = time.Now()
	sh.mu.Unlock()
}

// checkFinished returns ErrTxFinished if tx already committed or aborted
// here (within the tombstone TTL).
func (m *TwoPL) checkFinished(tx model.TxID) error {
	sh := m.finishedShardOf(tx)
	sh.mu.Lock()
	at, ok := sh.m[tx]
	sh.mu.Unlock()
	if ok && time.Since(at) < m.finishedTTL() {
		return ErrTxFinished
	}
	return nil
}

// isSplit reports whether item is currently split (callers gate on
// numSplit first so the uncontended path stays lock-free).
func (m *TwoPL) isSplit(item model.ItemID) bool {
	m.splitMu.Lock()
	_, ok := m.splits[item]
	m.splitMu.Unlock()
	return ok
}

// Read implements Manager: S-lock, drain any split, then read the copy.
func (m *TwoPL) Read(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	if err := m.checkFinished(tx); err != nil {
		return 0, 0, err
	}
	if err := m.acquire(ctx, tx, item, lock.Shared); err != nil {
		return 0, 0, err
	}
	if m.numSplit.Load() > 0 {
		if err := m.drainSplit(ctx, item); err != nil {
			return 0, 0, err
		}
	}
	return m.finishRead(tx, item)
}

// TryRead implements Manager: grant the S-lock on the lock manager's fast
// path or report would-block without queueing. A split item always reports
// would-block — the blocking path must drain the slot first. (The grant, if
// it happened, is kept: the same transaction's blocking retry re-acquires
// it as a no-op, and commit/abort releases it either way.)
func (m *TwoPL) TryRead(tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	if err := m.checkFinished(tx); err != nil {
		return 0, 0, err
	}
	if m.numSplit.Load() > 0 && m.isSplit(item) {
		return 0, 0, ErrWouldBlock
	}
	if err := m.locks.TryAcquire(tx, item, lock.Shared); err != nil {
		return 0, 0, ErrWouldBlock
	}
	// Re-check after the grant: a split created concurrently checked the
	// lock table for idleness, so of the two racing sides one always
	// observes the other (see splitItemLocked).
	if m.numSplit.Load() > 0 && m.isSplit(item) {
		return 0, 0, ErrWouldBlock
	}
	m.holders.touch(tx)
	return m.finishRead(tx, item)
}

// finishRead is the post-acquire half of Read: fetch the copy and overlay
// the transaction's own buffered intent (read-your-writes).
func (m *TwoPL) finishRead(tx model.TxID, item model.ItemID) (int64, model.Version, error) {
	c, ok := m.store.Get(item)
	if !ok {
		return 0, 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.reads.Add(1)
	val := c.Value
	sh := m.stripeOf(item)
	sh.mu.Lock()
	if own, ok := sh.intents[tx][item]; ok {
		if own.delta {
			val = c.Value + own.value // own blind add folded into the copy
		} else {
			val = own.value // read-your-writes on the buffered intent
		}
	}
	sh.mu.Unlock()
	return val, c.Version, nil
}

// PreWrite implements Manager: X-lock, drain any split, buffer the intent,
// report the current version.
func (m *TwoPL) PreWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	if err := m.checkFinished(tx); err != nil {
		return 0, err
	}
	if err := m.acquire(ctx, tx, item, lock.Exclusive); err != nil {
		return 0, err
	}
	if m.numSplit.Load() > 0 {
		if err := m.drainSplit(ctx, item); err != nil {
			return 0, err
		}
	}
	return m.finishPreWrite(tx, item, wintent{value: value})
}

// TryPreWrite implements Manager: grant the X-lock on the lock manager's
// fast path or report would-block without queueing (split items always
// would-block; see TryRead).
func (m *TwoPL) TryPreWrite(tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	if err := m.checkFinished(tx); err != nil {
		return 0, err
	}
	if m.numSplit.Load() > 0 && m.isSplit(item) {
		return 0, ErrWouldBlock
	}
	if err := m.locks.TryAcquire(tx, item, lock.Exclusive); err != nil {
		return 0, ErrWouldBlock
	}
	if m.numSplit.Load() > 0 && m.isSplit(item) {
		return 0, ErrWouldBlock
	}
	m.holders.touch(tx)
	return m.finishPreWrite(tx, item, wintent{value: value})
}

// PreAdd implements Manager: admit a commutative blind add. Split items
// admit lock-free; otherwise the add takes an exclusive lock like a write
// (and its contention feeds the split decision).
//
// A blocked add does NOT park in the lock queue: FIFO queue hand-off would
// keep a hot item's lock permanently non-idle, and the split — whose safety
// check needs an idle instant — could never form. Instead the add retries
// the non-blocking admission with backoff until it is admitted (by grant or
// by split) or the lock timeout expires. Spinning adds are invisible to the
// waits-for graph, so an add-add deadlock falls to the timeout; the exec
// layer's sorted acquisition keeps multi-item transactions out of that
// corner.
func (m *TwoPL) PreAdd(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error) {
	if m.opts.NoSplit {
		// Ablation baseline: adds behave exactly like absolute writes.
		if err := m.checkFinished(tx); err != nil {
			return 0, err
		}
		if err := m.acquire(ctx, tx, item, lock.Exclusive); err != nil {
			return 0, err
		}
		return m.finishPreWrite(tx, item, wintent{value: delta, delta: true})
	}
	ver, err := m.TryPreAdd(tx, ts, item, delta)
	if !errors.Is(err, ErrWouldBlock) {
		return ver, err
	}
	if m.opts.LockTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.LockTimeout)
		defer cancel()
	}
	m.addWaits.Add(1)
	start := m.opts.waitStart()
	backoff := 50 * time.Microsecond
	for {
		select {
		case <-ctx.Done():
			return 0, model.Abortf(model.AbortCC, "lock timeout: %s on %s(add)", tx, item)
		case <-time.After(backoff):
		}
		if backoff < 2*time.Millisecond {
			backoff *= 2
		}
		ver, err := m.TryPreAdd(tx, ts, item, delta)
		if !errors.Is(err, ErrWouldBlock) {
			if err == nil && !start.IsZero() {
				m.opts.observeWait(ctx, item, start)
			}
			return ver, err
		}
	}
}

// TryPreAdd implements Manager. Unlike TryPreWrite it may succeed under
// contention: the split path exists precisely so hot blind adds stop
// queueing.
func (m *TwoPL) TryPreAdd(tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error) {
	if err := m.checkFinished(tx); err != nil {
		return 0, err
	}
	if !m.opts.NoSplit {
		// The hotness check runs BEFORE the lock attempt: an idle lock is
		// the only instant a split may form, and it is also exactly when
		// TryAcquire would succeed — checked after the failure, the split
		// condition could never hold and the item would stay a convoy
		// forever. An already-hot item therefore splits (or admits through
		// its open slot) here, and only cold items fall through to the lock.
		m.splitMu.Lock()
		if slot := m.splits[item]; slot != nil {
			if slot.draining {
				m.splitMu.Unlock()
				return 0, ErrWouldBlock
			}
			ver, err := m.slotAdmitLocked(slot, tx, item, delta)
			m.splitMu.Unlock()
			return ver, err
		}
		if m.contended[item] >= uint32(m.opts.SplitThreshold) && m.locks.Idle(item) {
			m.splitItemLocked(item)
			ver, err := m.slotAdmitLocked(m.splits[item], tx, item, delta)
			m.splitMu.Unlock()
			return ver, err
		}
		m.splitMu.Unlock()
	}
	if err := m.locks.TryAcquire(tx, item, lock.Exclusive); err == nil {
		m.holders.touch(tx)
		return m.finishPreWrite(tx, item, wintent{value: delta, delta: true})
	}
	if m.opts.NoSplit {
		return 0, ErrWouldBlock
	}
	// Contended: feed the split decision, so the retry splits the item the
	// moment the current holder releases.
	m.splitMu.Lock()
	if _, ok := m.splits[item]; !ok {
		m.contended[item]++
	}
	m.splitMu.Unlock()
	return 0, ErrWouldBlock
}

// splitItemLocked moves item into split execution. The caller holds splitMu
// and has verified the item's lock is idle: the idle check and the map
// publication happen atomically under splitMu, and every reader/writer
// re-checks the splits map after its lock grant, so whichever side wins the
// race the other observes it.
func (m *TwoPL) splitItemLocked(item model.ItemID) {
	m.splits[item] = &splitSlot{
		active:  make(map[model.TxID]bool),
		drained: make(chan struct{}),
	}
	delete(m.contended, item)
	m.numSplit.Add(1)
	m.splitCnt.Add(1)
}

// slotAdmit admits a blind add through item's split slot if one is open.
// Returns ok=false when the item is not split (or is draining) and the add
// must go through the lock path.
func (m *TwoPL) slotAdmit(tx model.TxID, item model.ItemID, delta int64) (model.Version, bool, error) {
	m.splitMu.Lock()
	slot := m.splits[item]
	if slot == nil || slot.draining {
		m.splitMu.Unlock()
		return 0, false, nil
	}
	ver, err := m.slotAdmitLocked(slot, tx, item, delta)
	m.splitMu.Unlock()
	return ver, true, err
}

// slotAdmitLocked records a lock-free blind-add admission. The caller holds
// splitMu and has checked the slot is open.
func (m *TwoPL) slotAdmitLocked(slot *splitSlot, tx model.TxID, item model.ItemID, delta int64) (model.Version, error) {
	c, ok := m.store.Get(item)
	if !ok {
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	slot.active[tx] = true
	m.bufferIntent(tx, item, wintent{value: delta, delta: true, slot: slot})
	m.holders.touch(tx)
	m.adds.Add(1)
	m.splitAdds.Add(1)
	m.preWrites.Add(1)
	return c.Version, nil
}

// drainSplit returns item to plain locking: stop admissions, wait for every
// lock-free add already admitted to commit or abort, then drop the slot.
// The caller has already acquired its own lock on the item, so new adds
// queue behind it while the drain waits. Bounded by ctx (the caller's lock
// timeout): an add stuck in a slow commit protocol must not wedge readers
// forever.
func (m *TwoPL) drainSplit(ctx context.Context, item model.ItemID) error {
	m.splitMu.Lock()
	slot := m.splits[item]
	if slot == nil {
		m.splitMu.Unlock()
		return nil
	}
	if !slot.draining {
		slot.draining = true
		if len(slot.active) == 0 && !slot.closed {
			slot.closed = true
			close(slot.drained)
		}
	}
	m.splitMu.Unlock()

	select {
	case <-slot.drained:
	case <-ctx.Done():
		return model.Abortf(model.AbortCC, "timeout draining split item %s", item)
	}

	m.splitMu.Lock()
	if m.splits[item] == slot {
		delete(m.splits, item)
		delete(m.contended, item)
		m.numSplit.Add(-1)
		m.drainCnt.Add(1)
	}
	m.splitMu.Unlock()
	return nil
}

// finishPreWrite is the post-acquire half of PreWrite/PreAdd: buffer the
// intent and report the copy's current version.
func (m *TwoPL) finishPreWrite(tx model.TxID, item model.ItemID, in wintent) (model.Version, error) {
	c, ok := m.store.Get(item)
	if !ok {
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.bufferIntent(tx, item, in)
	m.preWrites.Add(1)
	if in.delta {
		m.adds.Add(1)
	}
	return c.Version, nil
}

// bufferIntent records (or merges) one write intent. Repeated blind adds of
// the same item accumulate their deltas; an absolute write replaces any
// earlier intent.
func (m *TwoPL) bufferIntent(tx model.TxID, item model.ItemID, in wintent) {
	sh := m.stripeOf(item)
	sh.mu.Lock()
	if sh.intents[tx] == nil {
		sh.intents[tx] = make(map[model.ItemID]wintent)
	}
	if prev, ok := sh.intents[tx][item]; ok && prev.delta && in.delta {
		in.value += prev.value
		if in.slot == nil {
			in.slot = prev.slot
		}
	}
	sh.intents[tx][item] = in
	sh.mu.Unlock()
}

func (m *TwoPL) acquire(ctx context.Context, tx model.TxID, item model.ItemID, mode lock.Mode) error {
	if err := m.locks.Acquire(ctx, tx, item, mode); err != nil {
		return err
	}
	m.holders.touch(tx)
	return nil
}

// releaseSlots removes tx from the split slots of its lock-free add
// admissions, waking drains waiting on the last one.
func (m *TwoPL) releaseSlots(slots []*splitSlot, tx model.TxID) {
	if len(slots) == 0 {
		return
	}
	m.splitMu.Lock()
	for _, slot := range slots {
		delete(slot.active, tx)
		if slot.draining && len(slot.active) == 0 && !slot.closed {
			slot.closed = true
			close(slot.drained)
		}
	}
	m.splitMu.Unlock()
}

// clearIntents discards tx's buffered intents across all stripes (the
// abort path, which has no write set to narrow the sweep), returning any
// split slots the intents were admitted through.
func (m *TwoPL) clearIntents(tx model.TxID) []*splitSlot {
	var slots []*splitSlot
	for i := range m.intents {
		sh := &m.intents[i]
		sh.mu.Lock()
		for _, in := range sh.intents[tx] {
			if in.slot != nil {
				slots = append(slots, in.slot)
			}
		}
		delete(sh.intents, tx)
		sh.mu.Unlock()
	}
	return slots
}

// Commit implements Manager: install the final records, then release locks
// (strict 2PL order: writes visible before any lock is released). Intents
// are buffered only for pre-written items, and every pre-written item at
// this site is in the commit's write set, so only the written items'
// stripes need sweeping (deduplicated via a stripe bitmask — stripe count
// is capped at lock.MaxShards = 64).
func (m *TwoPL) Commit(tx model.TxID, writes []model.WriteRecord) error {
	err := m.store.Apply(writes)
	var slots []*splitSlot
	if len(writes) == 0 {
		slots = m.clearIntents(tx)
	} else {
		var mask uint64
		for _, w := range writes {
			mask |= 1 << (shard.Hash(w.Item) & m.mask)
		}
		for i := range m.intents {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			sh := &m.intents[i]
			sh.mu.Lock()
			for _, in := range sh.intents[tx] {
				if in.slot != nil {
					slots = append(slots, in.slot)
				}
			}
			delete(sh.intents, tx)
			sh.mu.Unlock()
		}
	}
	m.releaseSlots(slots, tx)
	m.locks.ReleaseAll(tx)
	m.holders.drop(tx)
	m.markFinished(tx)
	return err
}

// Abort implements Manager.
func (m *TwoPL) Abort(tx model.TxID) {
	m.releaseSlots(m.clearIntents(tx), tx)
	m.locks.ReleaseAll(tx)
	m.holders.drop(tx)
	m.markFinished(tx)
}

// Holders implements Manager.
func (m *TwoPL) Holders(age time.Duration) []model.TxID {
	return m.holders.holders(age)
}

// HoldsIntents implements Manager.
func (m *TwoPL) HoldsIntents(tx model.TxID, items []model.ItemID) bool {
	for _, item := range items {
		sh := m.stripeOf(item)
		sh.mu.Lock()
		_, ok := sh.intents[tx][item]
		sh.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// Reinstate implements Manager: re-acquire exclusive locks for an in-doubt
// transaction during recovery (conservative for delta records too: recovery
// runs before the site admits new work, so nothing is split yet and
// acquisition cannot block).
func (m *TwoPL) Reinstate(tx model.TxID, ts model.Timestamp, writes []model.WriteRecord) error {
	for _, w := range writes {
		if err := m.locks.Acquire(context.Background(), tx, w.Item, lock.Exclusive); err != nil {
			return err
		}
	}
	m.holders.touch(tx)
	return nil
}

// SplitItems reports how many items are currently in split execution.
func (m *TwoPL) SplitItems() int {
	return int(m.numSplit.Load())
}

// Stats implements Manager, merging lock-manager counters.
func (m *TwoPL) Stats() Stats {
	s := Stats{
		Reads:     m.reads.Load(),
		PreWrites: m.preWrites.Load(),
		Adds:      m.adds.Load(),
		SplitAdds: m.splitAdds.Load(),
		Splits:    m.splitCnt.Load(),
		Drains:    m.drainCnt.Load(),
	}
	ls := m.locks.Stats()
	s.Waits = ls.Waits + m.addWaits.Load()
	s.Deadlocks = ls.Deadlocks
	s.Timeouts = ls.Timeouts
	return s
}
