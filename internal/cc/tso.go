package cc

import (
	"context"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
)

// TSO is basic timestamp ordering with strict pre-write intents (Bernstein
// et al.'s TO scheduler made strict so the ACP can always commit admitted
// transactions):
//
//   - Read(ts) is rejected if ts < wts(item); otherwise, if a pending
//     pre-write intent with a smaller timestamp exists, the read waits for
//     it to resolve (it may need that writer's value); otherwise it reads
//     and advances rts.
//   - PreWrite(ts) is rejected if ts < rts(item) or ts < wts(item);
//     otherwise an intent is buffered.
//
// Rejections abort with cause CC; the transaction restarts with a fresh
// (larger) timestamp at the workload layer if configured.
type TSO struct {
	store *storage.Store
	opts  Options

	mu    sync.Mutex
	items map[model.ItemID]*tsoItem
	byTx  map[model.TxID]map[model.ItemID]bool
	// holders records when each transaction first buffered an intent,
	// feeding Holders (the CC janitor's age scan).
	holders *holderTracker
	stats   Stats
}

type tsoItem struct {
	rts, wts model.Timestamp
	intents  map[model.TxID]tsoIntent
	changed  chan struct{}
}

type tsoIntent struct {
	ts    model.Timestamp
	value int64
	// delta marks a commutative blind-add intent: value is merged into the
	// copy at commit instead of replacing it. TSO/MVTSO gain no concurrency
	// from commutativity (intents still serialize per copy — the hot-item
	// split machinery is 2PL's); the flag only rides through to the commit
	// record so the semantics match across CCPs.
	delta bool
}

// mergeTSOIntent buffers in, summing repeated delta intents from the same
// transaction (a transaction may blind-add the same item more than once);
// any other repeat overwrites, as before.
func mergeTSOIntent(intents map[model.TxID]tsoIntent, tx model.TxID, in tsoIntent) {
	if old, ok := intents[tx]; ok && old.delta && in.delta {
		in.value += old.value
	}
	intents[tx] = in
}

// NewTSO builds the TSO manager over the site's store.
func NewTSO(store *storage.Store, opts Options) *TSO {
	return &TSO{
		store:   store,
		opts:    opts,
		items:   make(map[model.ItemID]*tsoItem),
		byTx:    make(map[model.TxID]map[model.ItemID]bool),
		holders: newHolderTracker(),
	}
}

// Name implements Manager.
func (m *TSO) Name() string { return "tso" }

func (m *TSO) item(id model.ItemID) *tsoItem {
	it := m.items[id]
	if it == nil {
		it = &tsoItem{intents: make(map[model.TxID]tsoIntent), changed: make(chan struct{})}
		m.items[id] = it
	}
	return it
}

// minForeignIntent returns the smallest intent timestamp on it not owned by
// tx, and whether one exists.
func minForeignIntent(it *tsoItem, tx model.TxID) (model.Timestamp, bool) {
	var min model.Timestamp
	found := false
	for owner, in := range it.intents {
		if owner == tx {
			continue
		}
		if !found || in.ts.Less(min) {
			min = in.ts
			found = true
		}
	}
	return min, found
}

// Read implements Manager.
func (m *TSO) Read(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	ctx, cancel := context.WithTimeout(ctx, m.opts.LockTimeout)
	defer cancel()
	m.mu.Lock()
	for {
		it := m.item(item)
		if own, ok := it.intents[tx]; ok {
			// Read-your-writes on the buffered intent.
			c, _ := m.store.Get(item)
			val := own.value
			if own.delta {
				val += c.Value // delta intents merge, not replace
			}
			m.stats.Reads++
			m.mu.Unlock()
			return val, c.Version, nil
		}
		if ts.Less(it.wts) {
			m.stats.Rejections++
			m.mu.Unlock()
			return 0, 0, model.Abortf(model.AbortCC, "tso: read of %s at %s rejected, wts=%s", item, ts, it.wts)
		}
		if min, ok := minForeignIntent(it, tx); ok && min.Less(ts) {
			// Strictness: a smaller-timestamped write is pending; wait.
			ch := it.changed
			m.stats.Waits++
			m.mu.Unlock()
			park := m.opts.waitStart()
			select {
			case <-ch:
				m.opts.observeWait(ctx, item, park)
				m.mu.Lock()
				continue
			case <-ctx.Done():
				m.opts.observeWait(ctx, item, park)
				m.mu.Lock()
				m.stats.Timeouts++
				m.mu.Unlock()
				return 0, 0, model.Abortf(model.AbortCC, "tso: read of %s at %s timed out waiting on pre-write intent", item, ts)
			}
		}
		if it.rts.Less(ts) {
			it.rts = ts
		}
		c, ok := m.store.Get(item)
		if !ok {
			m.mu.Unlock()
			return 0, 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
		}
		m.stats.Reads++
		m.mu.Unlock()
		return c.Value, c.Version, nil
	}
}

// TryRead implements Manager: Read without the strictness wait — a pending
// smaller-timestamped foreign intent answers ErrWouldBlock instead of
// parking on the intent gate.
func (m *TSO) TryRead(tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it := m.item(item)
	if own, ok := it.intents[tx]; ok {
		// Read-your-writes on the buffered intent.
		c, _ := m.store.Get(item)
		val := own.value
		if own.delta {
			val += c.Value // delta intents merge, not replace
		}
		m.stats.Reads++
		return val, c.Version, nil
	}
	if ts.Less(it.wts) {
		m.stats.Rejections++
		return 0, 0, model.Abortf(model.AbortCC, "tso: read of %s at %s rejected, wts=%s", item, ts, it.wts)
	}
	if min, ok := minForeignIntent(it, tx); ok && min.Less(ts) {
		return 0, 0, ErrWouldBlock
	}
	if it.rts.Less(ts) {
		it.rts = ts
	}
	c, ok := m.store.Get(item)
	if !ok {
		return 0, 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.stats.Reads++
	return c.Value, c.Version, nil
}

// PreWrite implements Manager. Conflicting pre-writes are serialized per
// copy: a pre-write waits until no other transaction's intent is pending on
// the item. This is what makes the version numbers handed to the quorum
// coordinator unique — with two concurrent buffered intents both would see
// the same base version, the coordinator would assign colliding install
// versions, and one write would be silently lost at shared copies.
func (m *TSO) PreWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	return m.preWrite(ctx, tx, ts, item, value, false)
}

// PreAdd implements Manager: a blind add is a pre-write with a delta-flagged
// intent. TSO serializes it per copy exactly like an absolute write.
func (m *TSO) PreAdd(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error) {
	return m.preWrite(ctx, tx, ts, item, delta, true)
}

func (m *TSO) preWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64, delta bool) (model.Version, error) {
	ctx, cancel := context.WithTimeout(ctx, m.opts.LockTimeout)
	defer cancel()
	m.mu.Lock()
	it := m.item(item)
	for {
		if _, foreign := minForeignIntent(it, tx); !foreign {
			break
		}
		ch := it.changed
		m.stats.Waits++
		m.mu.Unlock()
		park := m.opts.waitStart()
		select {
		case <-ch:
			m.opts.observeWait(ctx, item, park)
			m.mu.Lock()
			it = m.item(item)
		case <-ctx.Done():
			m.opts.observeWait(ctx, item, park)
			m.mu.Lock()
			m.stats.Timeouts++
			m.mu.Unlock()
			return 0, model.Abortf(model.AbortCC, "tso: pre-write of %s at %s timed out on pending intent", item, ts)
		}
	}
	defer m.mu.Unlock()
	if ts.Less(it.rts) || ts.Less(it.wts) {
		m.stats.Rejections++
		return 0, model.Abortf(model.AbortCC, "tso: pre-write of %s at %s rejected, rts=%s wts=%s", item, ts, it.rts, it.wts)
	}
	mergeTSOIntent(it.intents, tx, tsoIntent{ts: ts, value: value, delta: delta})
	if m.byTx[tx] == nil {
		m.byTx[tx] = make(map[model.ItemID]bool)
	}
	m.byTx[tx][item] = true
	m.holders.touch(tx)
	c, ok := m.store.Get(item)
	if !ok {
		delete(it.intents, tx)
		delete(m.byTx[tx], item)
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.stats.PreWrites++
	if delta {
		m.stats.Adds++
	}
	return c.Version, nil
}

// TryPreWrite implements Manager: PreWrite without the per-copy
// serialization wait — any pending foreign intent answers ErrWouldBlock.
func (m *TSO) TryPreWrite(tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	return m.tryPreWrite(tx, ts, item, value, false)
}

// TryPreAdd implements Manager; see PreAdd.
func (m *TSO) TryPreAdd(tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error) {
	return m.tryPreWrite(tx, ts, item, delta, true)
}

func (m *TSO) tryPreWrite(tx model.TxID, ts model.Timestamp, item model.ItemID, value int64, delta bool) (model.Version, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it := m.item(item)
	if _, foreign := minForeignIntent(it, tx); foreign {
		return 0, ErrWouldBlock
	}
	if ts.Less(it.rts) || ts.Less(it.wts) {
		m.stats.Rejections++
		return 0, model.Abortf(model.AbortCC, "tso: pre-write of %s at %s rejected, rts=%s wts=%s", item, ts, it.rts, it.wts)
	}
	mergeTSOIntent(it.intents, tx, tsoIntent{ts: ts, value: value, delta: delta})
	if m.byTx[tx] == nil {
		m.byTx[tx] = make(map[model.ItemID]bool)
	}
	m.byTx[tx][item] = true
	m.holders.touch(tx)
	c, ok := m.store.Get(item)
	if !ok {
		delete(it.intents, tx)
		delete(m.byTx[tx], item)
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	m.stats.PreWrites++
	if delta {
		m.stats.Adds++
	}
	return c.Version, nil
}

// Commit implements Manager: install the final records, advance wts, and
// resolve intents.
func (m *TSO) Commit(tx model.TxID, writes []model.WriteRecord) error {
	err := m.store.Apply(writes)
	m.mu.Lock()
	defer m.mu.Unlock()
	for item := range m.byTx[tx] {
		it := m.item(item)
		if in, ok := it.intents[tx]; ok {
			if it.wts.Less(in.ts) {
				it.wts = in.ts
			}
			delete(it.intents, tx)
			close(it.changed)
			it.changed = make(chan struct{})
		}
	}
	delete(m.byTx, tx)
	m.holders.drop(tx)
	return err
}

// Abort implements Manager.
func (m *TSO) Abort(tx model.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for item := range m.byTx[tx] {
		it := m.item(item)
		if _, ok := it.intents[tx]; ok {
			delete(it.intents, tx)
			close(it.changed)
			it.changed = make(chan struct{})
		}
	}
	delete(m.byTx, tx)
	m.holders.drop(tx)
}

// Holders implements Manager.
func (m *TSO) Holders(age time.Duration) []model.TxID {
	return m.holders.holders(age)
}

// HoldsIntents implements Manager.
func (m *TSO) HoldsIntents(tx model.TxID, items []model.ItemID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	owned := m.byTx[tx]
	for _, item := range items {
		if !owned[item] {
			return false
		}
	}
	return true
}

// Reinstate implements Manager: reinstall pre-write intents for an in-doubt
// transaction found during recovery.
func (m *TSO) Reinstate(tx model.TxID, ts model.Timestamp, writes []model.WriteRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range writes {
		it := m.item(w.Item)
		it.intents[tx] = tsoIntent{ts: ts, value: w.Value, delta: w.Delta}
		if m.byTx[tx] == nil {
			m.byTx[tx] = make(map[model.ItemID]bool)
		}
		m.byTx[tx][w.Item] = true
	}
	m.holders.touch(tx)
	return nil
}

// Stats implements Manager.
func (m *TSO) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
