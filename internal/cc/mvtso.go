package cc

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
)

// maxVersionChain bounds the per-item version history kept by MVTSO. Old
// versions beyond the bound are pruned; reads older than the oldest kept
// version are rejected (the classic "version too old" multi-version abort).
const maxVersionChain = 32

// MVTSO is multi-version timestamp ordering — the paper's suggested
// term-project replacement for basic TSO. Each item keeps a chain of
// committed versions ordered by writer timestamp:
//
//   - Read(ts) never rejects a transaction whose version is still kept: it
//     returns the latest version with writer-ts ≤ ts (waiting out any
//     pending smaller-timestamped pre-write that would create a closer
//     version), and records ts in that version's read-timestamp.
//   - PreWrite(ts) is rejected if ts precedes the newest committed version
//     or that version's read timestamp.
//
// Rainbow's MVTSO restricts writes to the tail of the version chain
// (textbook MVTO would insert older-timestamped writes mid-chain). The
// restriction keeps the store version numbers — which the quorum-consensus
// RCP uses to resolve replicated reads and assign install versions —
// order-consistent with timestamps; without it, a quorum read could prefer
// a higher-numbered but logically older version. The multi-version benefit
// Rainbow keeps is on the read side: reads of old versions never abort,
// which is the observable difference experiment E4 looks for.
type MVTSO struct {
	store *storage.Store
	opts  Options

	mu    sync.Mutex
	items map[model.ItemID]*mvItem
	byTx  map[model.TxID]map[model.ItemID]bool
	// holders records when each transaction first buffered an intent,
	// feeding Holders (the CC janitor's age scan).
	holders *holderTracker
	stats   Stats
}

type mvVersion struct {
	ts    model.Timestamp // writer timestamp
	rts   model.Timestamp // max read timestamp of this version
	value int64
	ver   model.Version // store version number (QC-visible)
}

type mvItem struct {
	versions []mvVersion // ascending by ts; versions[0] is the initial value
	intents  map[model.TxID]tsoIntent
	changed  chan struct{}
}

// NewMVTSO builds the MVTSO manager over the site's store.
func NewMVTSO(store *storage.Store, opts Options) *MVTSO {
	return &MVTSO{
		store:   store,
		opts:    opts,
		items:   make(map[model.ItemID]*mvItem),
		byTx:    make(map[model.TxID]map[model.ItemID]bool),
		holders: newHolderTracker(),
	}
}

// Name implements Manager.
func (m *MVTSO) Name() string { return "mvtso" }

func (m *MVTSO) item(id model.ItemID) (*mvItem, error) {
	it := m.items[id]
	if it == nil {
		c, ok := m.store.Get(id)
		if !ok {
			return nil, model.Abortf(model.AbortRCP, "no copy of %s at this site", id)
		}
		it = &mvItem{
			versions: []mvVersion{{value: c.Value, ver: c.Version}},
			intents:  make(map[model.TxID]tsoIntent),
			changed:  make(chan struct{}),
		}
		m.items[id] = it
	}
	return it, nil
}

// visible returns the index of the latest version with ts' ≤ ts.
func (it *mvItem) visible(ts model.Timestamp) int {
	idx := 0
	for i := range it.versions {
		if !ts.Less(it.versions[i].ts) { // versions[i].ts <= ts
			idx = i
		} else {
			break
		}
	}
	return idx
}

// Read implements Manager.
func (m *MVTSO) Read(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	ctx, cancel := context.WithTimeout(ctx, m.opts.LockTimeout)
	defer cancel()
	m.mu.Lock()
	for {
		it, err := m.item(item)
		if err != nil {
			m.mu.Unlock()
			return 0, 0, err
		}
		if own, ok := it.intents[tx]; ok {
			v := it.versions[it.visible(ts)]
			val := own.value
			if own.delta {
				// Delta intents merge into the chain tail at commit.
				val += it.versions[len(it.versions)-1].value
			}
			m.stats.Reads++
			m.mu.Unlock()
			return val, v.ver, nil
		}
		vi := it.visible(ts)
		v := &it.versions[vi]
		// A pending intent in (v.ts, ts) would create the version this read
		// should observe: wait for it to commit or abort.
		blocked := false
		for owner, in := range it.intents {
			if owner != tx && in.ts.Less(ts) && v.ts.Less(in.ts) {
				blocked = true
				break
			}
		}
		if blocked {
			ch := it.changed
			m.stats.Waits++
			m.mu.Unlock()
			park := m.opts.waitStart()
			select {
			case <-ch:
				m.opts.observeWait(ctx, item, park)
				m.mu.Lock()
				continue
			case <-ctx.Done():
				m.opts.observeWait(ctx, item, park)
				m.mu.Lock()
				m.stats.Timeouts++
				m.mu.Unlock()
				return 0, 0, model.Abortf(model.AbortCC, "mvtso: read of %s at %s timed out on pre-write intent", item, ts)
			}
		}
		if v.rts.Less(ts) {
			v.rts = ts
		}
		m.stats.Reads++
		val, ver := v.value, v.ver
		m.mu.Unlock()
		return val, ver, nil
	}
}

// TryRead implements Manager: Read without the pending-intent wait — a
// foreign intent that would create the version this read should observe
// answers ErrWouldBlock instead of parking.
func (m *MVTSO) TryRead(tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, err := m.item(item)
	if err != nil {
		return 0, 0, err
	}
	if own, ok := it.intents[tx]; ok {
		v := it.versions[it.visible(ts)]
		val := own.value
		if own.delta {
			// Delta intents merge into the chain tail at commit.
			val += it.versions[len(it.versions)-1].value
		}
		m.stats.Reads++
		return val, v.ver, nil
	}
	vi := it.visible(ts)
	v := &it.versions[vi]
	for owner, in := range it.intents {
		if owner != tx && in.ts.Less(ts) && v.ts.Less(in.ts) {
			return 0, 0, ErrWouldBlock
		}
	}
	if v.rts.Less(ts) {
		v.rts = ts
	}
	m.stats.Reads++
	return v.value, v.ver, nil
}

// PreWrite implements Manager. As in TSO, conflicting pre-writes serialize
// per copy (wait until no foreign intent is pending) so the version numbers
// reported to the quorum coordinator are unique.
func (m *MVTSO) PreWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	return m.preWrite(ctx, tx, ts, item, value, false)
}

// PreAdd implements Manager: a blind add is a pre-write with a delta-flagged
// intent, still serialized per copy; at commit the delta merges into the
// chain tail (chain-local, so the committed version value stays consistent
// with the store's delta apply).
func (m *MVTSO) PreAdd(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error) {
	return m.preWrite(ctx, tx, ts, item, delta, true)
}

func (m *MVTSO) preWrite(ctx context.Context, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64, delta bool) (model.Version, error) {
	ctx, cancel := context.WithTimeout(ctx, m.opts.LockTimeout)
	defer cancel()
	m.mu.Lock()
	it, err := m.item(item)
	if err != nil {
		m.mu.Unlock()
		return 0, err
	}
	for {
		foreign := false
		for owner := range it.intents {
			if owner != tx {
				foreign = true
				break
			}
		}
		if !foreign {
			break
		}
		ch := it.changed
		m.stats.Waits++
		m.mu.Unlock()
		park := m.opts.waitStart()
		select {
		case <-ch:
			m.opts.observeWait(ctx, item, park)
			m.mu.Lock()
			if it, err = m.item(item); err != nil {
				m.mu.Unlock()
				return 0, err
			}
		case <-ctx.Done():
			m.opts.observeWait(ctx, item, park)
			m.mu.Lock()
			m.stats.Timeouts++
			m.mu.Unlock()
			return 0, model.Abortf(model.AbortCC, "mvtso: pre-write of %s at %s timed out on pending intent", item, ts)
		}
	}
	defer m.mu.Unlock()
	// Writes append at the tail of the version chain only: a write whose
	// timestamp precedes the newest committed version is rejected. Full
	// MVTO would insert it mid-chain, but the quorum layer's version
	// numbers must be order-consistent with timestamps or replicated reads
	// would resolve to the wrong version (see package doc). The
	// multi-version advantage Rainbow keeps is on the read side: reads of
	// old versions never abort.
	tail := it.versions[len(it.versions)-1]
	if ts.Less(tail.ts) {
		m.stats.Rejections++
		return 0, model.Abortf(model.AbortCC, "mvtso: pre-write of %s at %s rejected, newer version at %s", item, ts, tail.ts)
	}
	if ts.Less(tail.rts) {
		m.stats.Rejections++
		return 0, model.Abortf(model.AbortCC, "mvtso: pre-write of %s at %s rejected, version read at %s", item, ts, tail.rts)
	}
	mergeTSOIntent(it.intents, tx, tsoIntent{ts: ts, value: value, delta: delta})
	if m.byTx[tx] == nil {
		m.byTx[tx] = make(map[model.ItemID]bool)
	}
	m.byTx[tx][item] = true
	m.holders.touch(tx)
	m.stats.PreWrites++
	if delta {
		m.stats.Adds++
	}
	// Report the copy's LATEST committed store version, not the ts-visible
	// one: the quorum coordinator derives the install version from the
	// maximum reported base, which must exceed every version already
	// installed at the quorum or two writers would collide.
	c, ok := m.store.Get(item)
	if !ok {
		delete(it.intents, tx)
		delete(m.byTx[tx], item)
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	return c.Version, nil
}

// TryPreWrite implements Manager: PreWrite without the per-copy
// serialization wait — any pending foreign intent answers ErrWouldBlock.
func (m *MVTSO) TryPreWrite(tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	return m.tryPreWrite(tx, ts, item, value, false)
}

// TryPreAdd implements Manager; see PreAdd.
func (m *MVTSO) TryPreAdd(tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, error) {
	return m.tryPreWrite(tx, ts, item, delta, true)
}

func (m *MVTSO) tryPreWrite(tx model.TxID, ts model.Timestamp, item model.ItemID, value int64, delta bool) (model.Version, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, err := m.item(item)
	if err != nil {
		return 0, err
	}
	for owner := range it.intents {
		if owner != tx {
			return 0, ErrWouldBlock
		}
	}
	// Tail-of-chain admission rules as in PreWrite (see that method's
	// comment for why mid-chain inserts are rejected).
	tail := it.versions[len(it.versions)-1]
	if ts.Less(tail.ts) {
		m.stats.Rejections++
		return 0, model.Abortf(model.AbortCC, "mvtso: pre-write of %s at %s rejected, newer version at %s", item, ts, tail.ts)
	}
	if ts.Less(tail.rts) {
		m.stats.Rejections++
		return 0, model.Abortf(model.AbortCC, "mvtso: pre-write of %s at %s rejected, version read at %s", item, ts, tail.rts)
	}
	mergeTSOIntent(it.intents, tx, tsoIntent{ts: ts, value: value, delta: delta})
	if m.byTx[tx] == nil {
		m.byTx[tx] = make(map[model.ItemID]bool)
	}
	m.byTx[tx][item] = true
	m.holders.touch(tx)
	m.stats.PreWrites++
	if delta {
		m.stats.Adds++
	}
	c, ok := m.store.Get(item)
	if !ok {
		delete(it.intents, tx)
		delete(m.byTx[tx], item)
		return 0, model.Abortf(model.AbortRCP, "no copy of %s at this site", item)
	}
	return c.Version, nil
}

// Commit implements Manager: turn intents into committed versions, install
// the final records in the store, prune old versions.
func (m *MVTSO) Commit(tx model.TxID, writes []model.WriteRecord) error {
	storeErr := m.store.Apply(writes)
	ver := make(map[model.ItemID]model.Version, len(writes))
	for _, w := range writes {
		ver[w.Item] = w.Version
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for item := range m.byTx[tx] {
		it := m.items[item]
		if it == nil {
			continue
		}
		in, ok := it.intents[tx]
		if !ok {
			continue
		}
		delete(it.intents, tx)
		nv := mvVersion{ts: in.ts, value: in.value, ver: ver[item]}
		if in.delta {
			// Chain-local merge: the committed version's value is the chain
			// tail plus the delta, mirroring the store's delta apply. (Safe
			// to read the tail here: pre-writes serialize per copy, so no
			// other version can have slipped in since this intent was
			// admitted.)
			nv.value = it.versions[len(it.versions)-1].value + in.value
		}
		it.versions = append(it.versions, nv)
		sort.Slice(it.versions, func(i, j int) bool { return it.versions[i].ts.Less(it.versions[j].ts) })
		if len(it.versions) > maxVersionChain {
			it.versions = it.versions[len(it.versions)-maxVersionChain:]
		}
		close(it.changed)
		it.changed = make(chan struct{})
	}
	delete(m.byTx, tx)
	m.holders.drop(tx)
	return storeErr
}

// Abort implements Manager.
func (m *MVTSO) Abort(tx model.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for item := range m.byTx[tx] {
		it := m.items[item]
		if it == nil {
			continue
		}
		if _, ok := it.intents[tx]; ok {
			delete(it.intents, tx)
			close(it.changed)
			it.changed = make(chan struct{})
		}
	}
	delete(m.byTx, tx)
	m.holders.drop(tx)
}

// Holders implements Manager.
func (m *MVTSO) Holders(age time.Duration) []model.TxID {
	return m.holders.holders(age)
}

// HoldsIntents implements Manager.
func (m *MVTSO) HoldsIntents(tx model.TxID, items []model.ItemID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	owned := m.byTx[tx]
	for _, item := range items {
		if !owned[item] {
			return false
		}
	}
	return true
}

// Reinstate implements Manager.
func (m *MVTSO) Reinstate(tx model.TxID, ts model.Timestamp, writes []model.WriteRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range writes {
		it, err := m.item(w.Item)
		if err != nil {
			return err
		}
		it.intents[tx] = tsoIntent{ts: ts, value: w.Value, delta: w.Delta}
		if m.byTx[tx] == nil {
			m.byTx[tx] = make(map[model.ItemID]bool)
		}
		m.byTx[tx][w.Item] = true
	}
	m.holders.touch(tx)
	return nil
}

// Stats implements Manager.
func (m *MVTSO) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
