package cc

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
)

// TestDifferentialSequentialOracle runs random *sequential* transaction
// histories through all three CCP managers. With no concurrency, every
// scheduler must admit every operation and produce byte-identical final
// stores — any divergence is a scheduler bug (version bookkeeping, intent
// leakage, visibility).
func TestDifferentialSequentialOracle(t *testing.T) {
	items := []model.ItemID{"a", "b", "c"}

	run := func(name string, seed int64) (map[model.ItemID]storage.Copy, map[int]int64, bool) {
		store := storage.New()
		init := make(map[model.ItemID]int64, len(items))
		for i, it := range items {
			init[it] = int64(i * 100)
		}
		store.Init(init)
		m, err := New(name, store, Options{LockTimeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		reads := make(map[int]int64)
		version := make(map[model.ItemID]model.Version, len(items))
		readSeq := 0
		for txn := uint64(1); txn <= 12; txn++ {
			id := model.TxID{Site: "S", Seq: txn}
			ts := model.Timestamp{Time: txn, Site: "S"}
			var writes []model.WriteRecord
			nops := 1 + rng.Intn(4)
			ok := true
			for i := 0; i < nops && ok; i++ {
				item := items[rng.Intn(len(items))]
				if rng.Intn(2) == 0 {
					v, _, err := m.Read(context.Background(), id, ts, item)
					if err != nil {
						ok = false
						break
					}
					reads[readSeq] = v
					readSeq++
				} else {
					_, err := m.PreWrite(context.Background(), id, ts, item, int64(txn*1000)+int64(i))
					if err != nil {
						ok = false
						break
					}
					// Replace any earlier record for the same item, keeping
					// its version (the session layer does the same).
					replaced := false
					for j := range writes {
						if writes[j].Item == item {
							writes[j].Value = int64(txn*1000) + int64(i)
							replaced = true
							break
						}
					}
					if !replaced {
						version[item]++
						writes = append(writes, model.WriteRecord{Item: item, Value: int64(txn*1000) + int64(i), Version: version[item]})
					}
				}
			}
			if !ok {
				m.Abort(id)
				return nil, nil, false
			}
			if err := m.Commit(id, writes); err != nil {
				t.Fatalf("%s: commit: %v", name, err)
			}
		}
		return store.Snapshot(), reads, true
	}

	f := func(seed int64) bool {
		ref, refReads, refOK := run("2pl", seed)
		if !refOK {
			return false // sequential ops must never be rejected
		}
		for _, name := range []string{"tso", "mvtso"} {
			snap, rds, ok := run(name, seed)
			if !ok {
				t.Logf("%s rejected a sequential operation (seed %d)", name, seed)
				return false
			}
			if len(snap) != len(ref) {
				return false
			}
			for item, c := range ref {
				if snap[item] != c {
					t.Logf("%s: item %s = %+v, 2pl = %+v (seed %d)", name, item, snap[item], c, seed)
					return false
				}
			}
			if len(rds) != len(refReads) {
				return false
			}
			for i, v := range refReads {
				if rds[i] != v {
					t.Logf("%s: read %d = %d, 2pl = %d (seed %d)", name, i, rds[i], v, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
