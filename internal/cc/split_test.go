package cc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func addRec(item model.ItemID, delta int64, ver model.Version) model.WriteRecord {
	return model.WriteRecord{Item: item, Value: delta, Version: ver, Delta: true}
}

// --- Conformance: blind adds on every CCP ---

func TestConformanceAddCommitsDelta(t *testing.T) {
	for name, m := range managers(t) {
		if _, err := m.PreAdd(bg(), tx(1), ts(1), "x", 7); err != nil {
			t.Errorf("%s: preadd: %v", name, err)
			continue
		}
		if err := m.Commit(tx(1), []model.WriteRecord{addRec("x", 7, 1)}); err != nil {
			t.Errorf("%s: commit: %v", name, err)
			continue
		}
		v, _, err := m.Read(bg(), tx(2), ts(2), "x")
		if err != nil || v != 17 {
			t.Errorf("%s: read after add = %d (%v), want 17", name, v, err)
		}
		m.Abort(tx(2))
		if m.Stats().Adds == 0 {
			t.Errorf("%s: add not counted", name)
		}
	}
}

func TestConformanceAddReadYourOwnDelta(t *testing.T) {
	for name, m := range managers(t) {
		if _, err := m.PreAdd(bg(), tx(1), ts(1), "x", 5); err != nil {
			t.Errorf("%s: preadd: %v", name, err)
			continue
		}
		v, _, err := m.Read(bg(), tx(1), ts(1), "x")
		if err != nil || v != 15 {
			t.Errorf("%s: read-own-add = %d (%v), want 15", name, v, err)
		}
		m.Abort(tx(1))
	}
}

func TestConformanceRepeatedAddsMerge(t *testing.T) {
	for name, m := range managers(t) {
		if _, err := m.PreAdd(bg(), tx(1), ts(1), "x", 3); err != nil {
			t.Errorf("%s: preadd 1: %v", name, err)
			continue
		}
		if _, err := m.PreAdd(bg(), tx(1), ts(1), "x", 4); err != nil {
			t.Errorf("%s: preadd 2: %v", name, err)
			continue
		}
		// The coordinator's session merges repeated deltas into one record.
		if err := m.Commit(tx(1), []model.WriteRecord{addRec("x", 7, 1)}); err != nil {
			t.Errorf("%s: commit: %v", name, err)
			continue
		}
		v, _, err := m.Read(bg(), tx(2), ts(2), "x")
		if err != nil || v != 17 {
			t.Errorf("%s: read = %d (%v), want 17", name, v, err)
		}
		m.Abort(tx(2))
	}
}

func TestConformanceAbortDiscardsAdd(t *testing.T) {
	for name, m := range managers(t) {
		if _, err := m.PreAdd(bg(), tx(1), ts(1), "x", 9); err != nil {
			t.Errorf("%s: preadd: %v", name, err)
			continue
		}
		m.Abort(tx(1))
		v, _, err := m.Read(bg(), tx(2), ts(2), "x")
		if err != nil || v != 10 {
			t.Errorf("%s: read after aborted add = %d (%v), want 10", name, v, err)
		}
		m.Abort(tx(2))
	}
}

// --- 2PL split execution ---

// splitManager builds a TwoPL with a low split threshold for the tests.
func splitManager(threshold int) *TwoPL {
	return NewTwoPL(newStore(), Options{
		LockTimeout:    500 * time.Millisecond,
		SplitThreshold: threshold,
	})
}

// heat drives item past the split threshold: while holder keeps the lock,
// each TryPreAdd failure bumps the contention counter; after the holder
// releases, the next attempt splits the item.
func heat(t *testing.T, m *TwoPL, item model.ItemID, threshold int) {
	t.Helper()
	holder := tx(100)
	if _, err := m.PreAdd(bg(), holder, ts(100), item, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threshold; i++ {
		if _, err := m.TryPreAdd(tx(101+uint64(i)), ts(101), item, 1); !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("contended TryPreAdd = %v, want ErrWouldBlock", err)
		}
	}
	if err := m.Commit(holder, []model.WriteRecord{addRec(item, 1, 1)}); err != nil {
		t.Fatal(err)
	}
}

func Test2PLSplitFormsAndAdmitsLockFree(t *testing.T) {
	m := splitManager(2)
	heat(t, m, "x", 2)

	// The next add splits the item and admits through the slot.
	if _, err := m.TryPreAdd(tx(1), ts(1), "x", 5); err != nil {
		t.Fatalf("post-heat TryPreAdd: %v", err)
	}
	s := m.Stats()
	if s.Splits != 1 || s.SplitAdds == 0 {
		t.Fatalf("splits=%d splitAdds=%d, want 1 and >0", s.Splits, s.SplitAdds)
	}
	if m.SplitItems() != 1 {
		t.Fatalf("SplitItems = %d, want 1", m.SplitItems())
	}
	// Concurrent adds all admit without blocking and reconcile exactly.
	var wg sync.WaitGroup
	for i := uint64(2); i <= 9; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			if _, err := m.PreAdd(bg(), tx(i), ts(i), "x", int64(i)); err != nil {
				t.Errorf("concurrent add %d: %v", i, err)
				return
			}
			if err := m.Commit(tx(i), []model.WriteRecord{addRec("x", int64(i), 1)}); err != nil {
				t.Errorf("concurrent commit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	m.Commit(tx(1), []model.WriteRecord{addRec("x", 5, 1)})

	v, _, err := m.Read(bg(), tx(50), ts(50), "x")
	if err != nil {
		t.Fatal(err)
	}
	// 10 initial + 1 (heat holder) + 5 (tx1) + sum(2..9)=44.
	if v != 60 {
		t.Fatalf("reconciled value = %d, want 60", v)
	}
	m.Abort(tx(50))
}

func Test2PLSplitReadDrains(t *testing.T) {
	m := splitManager(2)
	heat(t, m, "x", 2)
	if _, err := m.TryPreAdd(tx(1), ts(1), "x", 5); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct {
		v   int64
		err error
	}, 1)
	go func() {
		v, _, err := m.Read(bg(), tx(2), ts(2), "x")
		done <- struct {
			v   int64
			err error
		}{v, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("reader returned %d (%v) before the slot drained", r.v, r.err)
	case <-time.After(20 * time.Millisecond):
	}
	// The uncommitted slot add resolves; the drain completes and the reader
	// sees the reconciled value.
	if err := m.Commit(tx(1), []model.WriteRecord{addRec("x", 5, 1)}); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil || r.v != 16 { // 10 + 1 (heat) + 5
		t.Fatalf("drained read = %d (%v), want 16", r.v, r.err)
	}
	s := m.Stats()
	if s.Drains != 1 {
		t.Fatalf("Drains = %d, want 1", s.Drains)
	}
	if m.SplitItems() != 0 {
		t.Fatalf("SplitItems = %d after drain, want 0", m.SplitItems())
	}
	m.Abort(tx(2))
}

func Test2PLSplitWriteDrainsAndOverwrites(t *testing.T) {
	m := splitManager(2)
	heat(t, m, "x", 2)
	if _, err := m.TryPreAdd(tx(1), ts(1), "x", 5); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(1), []model.WriteRecord{addRec("x", 5, 1)})

	// An absolute write drains the slot, then installs over the reconciled
	// value.
	if _, err := m.PreWrite(bg(), tx(2), ts(2), "x", 999); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx(2), []model.WriteRecord{rec("x", 999, 5)}); err != nil {
		t.Fatal(err)
	}
	v, _, err := m.Read(bg(), tx(3), ts(3), "x")
	if err != nil || v != 999 {
		t.Fatalf("read after write = %d (%v), want 999", v, err)
	}
	m.Abort(tx(3))
}

func Test2PLNoSplitAblation(t *testing.T) {
	m := NewTwoPL(newStore(), Options{
		LockTimeout:    500 * time.Millisecond,
		SplitThreshold: 1,
		NoSplit:        true,
	})
	holder := tx(1)
	if _, err := m.PreAdd(bg(), holder, ts(1), "x", 1); err != nil {
		t.Fatal(err)
	}
	// Contended adds never split with the ablation on, no matter how hot.
	for i := uint64(0); i < 20; i++ {
		if _, err := m.TryPreAdd(tx(2+i), ts(2), "x", 1); !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("TryPreAdd under ablation = %v, want ErrWouldBlock", err)
		}
	}
	// A blocked add behaves exactly like a blocked write: it waits for the
	// lock and proceeds after release.
	done := make(chan error, 1)
	go func() {
		_, err := m.PreAdd(bg(), tx(50), ts(50), "x", 2)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("add not blocked under ablation (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Commit(holder, []model.WriteRecord{addRec("x", 1, 1)})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(50), []model.WriteRecord{addRec("x", 2, 2)})
	s := m.Stats()
	if s.Splits != 0 || s.SplitAdds != 0 {
		t.Fatalf("ablation split stats: splits=%d splitAdds=%d, want 0/0", s.Splits, s.SplitAdds)
	}
	v, _, err := m.Read(bg(), tx(60), ts(60), "x")
	if err != nil || v != 13 {
		t.Fatalf("value = %d (%v), want 13", v, err)
	}
	m.Abort(tx(60))
}

func Test2PLPreAddRetriesUntilRelease(t *testing.T) {
	m := splitManager(50) // high threshold: the retry admits via the lock, not a split
	if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 11); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.PreAdd(bg(), tx(2), ts(2), "x", 3)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("add not blocked behind writer (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 11, 1)})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(2), []model.WriteRecord{addRec("x", 3, 1)})
	v, _, err := m.Read(bg(), tx(3), ts(3), "x")
	if err != nil || v != 14 {
		t.Fatalf("value = %d (%v), want 14", v, err)
	}
	m.Abort(tx(3))
}

func Test2PLPreAddTimesOutUnderHeldLock(t *testing.T) {
	m := NewTwoPL(newStore(), Options{LockTimeout: 50 * time.Millisecond, SplitThreshold: 1000})
	if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 1); err != nil {
		t.Fatal(err)
	}
	_, err := m.PreAdd(bg(), tx(2), ts(2), "x", 1)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("held-lock add = %v, want CC abort", err)
	}
	m.Abort(tx(1))
	m.Abort(tx(2))
}

// --- Finished-transaction fast fail (the never-spill bug) ---

func Test2PLFinishedTxRefusedNotWouldBlock(t *testing.T) {
	m := NewTwoPL(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 1, 1)})

	// Operations for the finished transaction must fail terminally, NOT
	// report ErrWouldBlock: the pipeline spills would-block operations to a
	// blocking retry that burns a full lock timeout and can never succeed.
	if _, _, err := m.TryRead(tx(1), ts(1), "x"); !errors.Is(err, ErrTxFinished) {
		t.Errorf("TryRead after commit = %v, want ErrTxFinished", err)
	}
	if _, err := m.TryPreWrite(tx(1), ts(1), "x", 2); !errors.Is(err, ErrTxFinished) {
		t.Errorf("TryPreWrite after commit = %v, want ErrTxFinished", err)
	}
	if _, err := m.TryPreAdd(tx(1), ts(1), "x", 2); !errors.Is(err, ErrTxFinished) {
		t.Errorf("TryPreAdd after commit = %v, want ErrTxFinished", err)
	}
	// The blocking variants refuse too, and the error is a terminal CC
	// abort so the serve path error-replies instead of retrying.
	if _, _, err := m.Read(bg(), tx(1), ts(1), "x"); !errors.Is(err, ErrTxFinished) {
		t.Errorf("Read after commit = %v, want ErrTxFinished", err)
	}
	if model.CauseOf(ErrTxFinished) != model.AbortCC {
		t.Errorf("ErrTxFinished cause = %v, want AbortCC", model.CauseOf(ErrTxFinished))
	}

	// Aborted transactions are tombstoned the same way.
	if _, err := m.PreWrite(bg(), tx(2), ts(2), "y", 1); err != nil {
		t.Fatal(err)
	}
	m.Abort(tx(2))
	if _, err := m.TryPreWrite(tx(2), ts(2), "y", 2); !errors.Is(err, ErrTxFinished) {
		t.Errorf("TryPreWrite after abort = %v, want ErrTxFinished", err)
	}
}

// --- TSO/MVTSO delta intents ---

func TestTSOAddIntentsMergeAndCommit(t *testing.T) {
	m := NewTSO(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreAdd(bg(), tx(1), ts(5), "x", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PreAdd(bg(), tx(1), ts(5), "x", 4); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx(1), []model.WriteRecord{addRec("x", 7, 1)}); err != nil {
		t.Fatal(err)
	}
	v, _, err := m.Read(bg(), tx(2), ts(10), "x")
	if err != nil || v != 17 {
		t.Fatalf("read = %d (%v), want 17", v, err)
	}
	if m.Stats().Adds != 2 {
		t.Errorf("Adds = %d, want 2", m.Stats().Adds)
	}
}

func TestMVTSOAddChainsOnTail(t *testing.T) {
	m := NewMVTSO(newStore(), Options{LockTimeout: time.Second})
	// Install an absolute write, then a later delta: the new version's value
	// is the chain tail plus the delta.
	if _, err := m.PreWrite(bg(), tx(1), ts(10), "x", 100); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 100, 1)})
	if _, err := m.PreAdd(bg(), tx(2), ts(20), "x", 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx(2), []model.WriteRecord{addRec("x", 5, 2)}); err != nil {
		t.Fatal(err)
	}
	if v, _, err := m.Read(bg(), tx(3), ts(30), "x"); err != nil || v != 105 {
		t.Fatalf("tail read = %d (%v), want 105", v, err)
	}
	// Historical read before the delta still sees the absolute value.
	if v, _, err := m.Read(bg(), tx(4), ts(15), "x"); err != nil || v != 100 {
		t.Fatalf("historical read = %d (%v), want 100", v, err)
	}
}

func TestConformanceReinstateAddProtects(t *testing.T) {
	// Recovery reinstates an in-doubt blind add; a conflicting reader must
	// not slip past it, and resolution reconciles the delta.
	for name, m := range managers(t) {
		if err := m.Reinstate(tx(1), ts(1), []model.WriteRecord{addRec("x", 4, 1)}); err != nil {
			t.Fatalf("%s: reinstate: %v", name, err)
		}
		done := make(chan struct {
			v   int64
			err error
		}, 1)
		go func() {
			v, _, err := m.Read(bg(), tx(2), ts(2), "x")
			done <- struct {
				v   int64
				err error
			}{v, err}
		}()
		select {
		case r := <-done:
			if r.err == nil {
				t.Errorf("%s: read of in-doubt add returned %d", name, r.v)
			}
		case <-time.After(20 * time.Millisecond):
			m.Commit(tx(1), []model.WriteRecord{addRec("x", 4, 1)})
			r := <-done
			if r.err == nil && r.v != 14 {
				t.Errorf("%s: reader after resolution saw %d, want 14", name, r.v)
			}
		}
		m.Abort(tx(2))
		m.Abort(tx(1))
	}
}
