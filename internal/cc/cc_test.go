package cc

import (
	"context"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
)

func tx(seq uint64) model.TxID    { return model.TxID{Site: "S", Seq: seq} }
func ts(t uint64) model.Timestamp { return model.Timestamp{Time: t, Site: "S"} }
func bg() context.Context         { return context.Background() }
func rec(item model.ItemID, v int64, ver model.Version) model.WriteRecord {
	return model.WriteRecord{Item: item, Value: v, Version: ver}
}

func newStore() *storage.Store {
	s := storage.New()
	s.Init(map[model.ItemID]int64{"x": 10, "y": 20, "z": 30})
	return s
}

// managers builds one of each CCP over a fresh store for conformance tests.
func managers(t *testing.T) map[string]Manager {
	t.Helper()
	out := make(map[string]Manager)
	for _, name := range Names() {
		m, err := New(name, newStore(), Options{LockTimeout: 200 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = m
	}
	return out
}

func TestNewUnknownProtocol(t *testing.T) {
	if _, err := New("optimistic", newStore(), Options{}); err == nil {
		t.Error("unknown protocol should fail")
	}
}

func TestNewDefaultIs2PL(t *testing.T) {
	m, err := New("", newStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "2pl" {
		t.Errorf("default CCP = %s", m.Name())
	}
}

// --- Conformance suite: behaviours every CCP must share ---

func TestConformanceReadReturnsValue(t *testing.T) {
	for name, m := range managers(t) {
		v, ver, err := m.Read(bg(), tx(1), ts(1), "x")
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if v != 10 || ver != 0 {
			t.Errorf("%s: Read = %d v%d, want 10 v0", name, v, ver)
		}
		m.Abort(tx(1))
	}
}

func TestConformanceCommitInstallsWrite(t *testing.T) {
	for name, m := range managers(t) {
		if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 99); err != nil {
			t.Errorf("%s: prewrite: %v", name, err)
			continue
		}
		if err := m.Commit(tx(1), []model.WriteRecord{rec("x", 99, 1)}); err != nil {
			t.Errorf("%s: commit: %v", name, err)
			continue
		}
		v, ver, err := m.Read(bg(), tx(2), ts(2), "x")
		if err != nil || v != 99 || ver != 1 {
			t.Errorf("%s: read after commit = %d v%d (%v)", name, v, ver, err)
		}
		m.Abort(tx(2))
	}
}

func TestConformanceAbortDiscardsWrite(t *testing.T) {
	for name, m := range managers(t) {
		if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 99); err != nil {
			t.Errorf("%s: prewrite: %v", name, err)
			continue
		}
		m.Abort(tx(1))
		v, _, err := m.Read(bg(), tx(2), ts(2), "x")
		if err != nil || v != 10 {
			t.Errorf("%s: read after abort = %d (%v), want 10", name, v, err)
		}
		m.Abort(tx(2))
	}
}

func TestConformanceReadYourOwnIntent(t *testing.T) {
	for name, m := range managers(t) {
		if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 77); err != nil {
			t.Errorf("%s: prewrite: %v", name, err)
			continue
		}
		v, _, err := m.Read(bg(), tx(1), ts(1), "x")
		if err != nil || v != 77 {
			t.Errorf("%s: read-own-write = %d (%v), want 77", name, v, err)
		}
		m.Abort(tx(1))
	}
}

func TestConformanceUnknownItem(t *testing.T) {
	for name, m := range managers(t) {
		if _, _, err := m.Read(bg(), tx(1), ts(1), "ghost"); err == nil {
			t.Errorf("%s: read of unhosted item succeeded", name)
		}
		m.Abort(tx(1))
		if _, err := m.PreWrite(bg(), tx(2), ts(2), "ghost", 1); err == nil {
			t.Errorf("%s: prewrite of unhosted item succeeded", name)
		}
		m.Abort(tx(2))
	}
}

func TestConformanceDirtyReadPrevented(t *testing.T) {
	// While tx1 has an uncommitted pre-write on x, a conflicting read by a
	// later transaction must NOT observe the dirty value. 2PL blocks it;
	// TSO/MVTSO gate it behind the intent. Either way, once tx1 commits the
	// reader sees the committed value; a reader that gets aborted instead is
	// also acceptable for TSO-family managers (rejection, not dirty read).
	for name, m := range managers(t) {
		if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 55); err != nil {
			t.Fatalf("%s: prewrite: %v", name, err)
		}
		got := make(chan struct {
			v   int64
			err error
		}, 1)
		go func() {
			v, _, err := m.Read(bg(), tx(2), ts(2), "x")
			got <- struct {
				v   int64
				err error
			}{v, err}
		}()
		time.Sleep(20 * time.Millisecond)
		select {
		case r := <-got:
			if r.err == nil {
				t.Errorf("%s: reader returned %d before writer resolved", name, r.v)
			}
			continue
		default: // still blocked — correct
		}
		m.Commit(tx(1), []model.WriteRecord{rec("x", 55, 1)})
		r := <-got
		if r.err == nil && r.v != 55 {
			t.Errorf("%s: blocked reader saw %d, want 55", name, r.v)
		}
		m.Abort(tx(2))
	}
}

func TestConformanceReinstateBlocksConflicts(t *testing.T) {
	// After recovery reinstates an in-doubt transaction's write set, a
	// conflicting reader must not slip past it.
	for name, m := range managers(t) {
		if err := m.Reinstate(tx(1), ts(1), []model.WriteRecord{rec("x", 5, 1)}); err != nil {
			t.Fatalf("%s: reinstate: %v", name, err)
		}
		done := make(chan struct {
			v   int64
			err error
		}, 1)
		go func() {
			v, _, err := m.Read(bg(), tx(2), ts(2), "x")
			done <- struct {
				v   int64
				err error
			}{v, err}
		}()
		select {
		case r := <-done:
			if r.err == nil {
				t.Errorf("%s: read of in-doubt item returned %d", name, r.v)
			}
		case <-time.After(20 * time.Millisecond):
			// blocked — correct; resolve and confirm the reader completes
			m.Commit(tx(1), []model.WriteRecord{rec("x", 5, 1)})
			r := <-done
			if r.err == nil && r.v != 5 {
				t.Errorf("%s: reader after resolution saw %d, want 5", name, r.v)
			}
		}
		m.Abort(tx(2))
		m.Abort(tx(1))
	}
}

// --- 2PL-specific ---

func Test2PLConflictingWritersSerialize(t *testing.T) {
	m := NewTwoPL(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.PreWrite(bg(), tx(2), ts(2), "x", 2)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("second writer not blocked")
	case <-time.After(20 * time.Millisecond):
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 1, 1)})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(2), []model.WriteRecord{rec("x", 2, 2)})
	v, _, _ := m.Read(bg(), tx(3), ts(3), "x")
	if v != 2 {
		t.Errorf("final value = %d, want 2", v)
	}
}

func Test2PLDeadlockAborts(t *testing.T) {
	m := NewTwoPL(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreWrite(bg(), tx(1), ts(1), "x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PreWrite(bg(), tx(2), ts(2), "y", 2); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() {
		_, err := m.PreWrite(bg(), tx(1), ts(1), "y", 1)
		first <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_, err := m.PreWrite(bg(), tx(2), ts(2), "x", 2)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("deadlock not CC-aborted: %v", err)
	}
	m.Abort(tx(2))
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	m.Abort(tx(1))
	if m.Stats().Deadlocks == 0 {
		t.Error("deadlock not counted")
	}
}

func Test2PLSharedReadersConcurrent(t *testing.T) {
	m := NewTwoPL(newStore(), Options{LockTimeout: time.Second})
	for i := uint64(1); i <= 5; i++ {
		if _, _, err := m.Read(bg(), tx(i), ts(i), "x"); err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		m.Abort(tx(i))
	}
	if s := m.Stats(); s.Reads != 5 {
		t.Errorf("Reads = %d", s.Reads)
	}
}

// --- TSO-specific ---

func TestTSOLateReadRejected(t *testing.T) {
	m := NewTSO(newStore(), Options{LockTimeout: time.Second})
	// tx at ts=10 writes x and commits: wts(x)=10.
	if _, err := m.PreWrite(bg(), tx(1), ts(10), "x", 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 1, 1)})
	// A read at ts=5 arrives too late.
	_, _, err := m.Read(bg(), tx(2), ts(5), "x")
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("late read not rejected: %v", err)
	}
	if m.Stats().Rejections != 1 {
		t.Errorf("Rejections = %d", m.Stats().Rejections)
	}
}

func TestTSOLateWriteRejected(t *testing.T) {
	m := NewTSO(newStore(), Options{LockTimeout: time.Second})
	if _, _, err := m.Read(bg(), tx(1), ts(10), "x"); err != nil {
		t.Fatal(err) // rts(x)=10
	}
	_, err := m.PreWrite(bg(), tx(2), ts(5), "x", 1)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("late write not rejected: %v", err)
	}
}

func TestTSOReadWaitsForSmallerIntent(t *testing.T) {
	m := NewTSO(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreWrite(bg(), tx(1), ts(5), "x", 50); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct {
		v   int64
		err error
	}, 1)
	go func() {
		v, _, err := m.Read(bg(), tx(2), ts(10), "x")
		done <- struct {
			v   int64
			err error
		}{v, err}
	}()
	select {
	case <-done:
		t.Fatal("read at larger ts did not wait for pending smaller intent")
	case <-time.After(20 * time.Millisecond):
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 50, 1)})
	r := <-done
	if r.err != nil || r.v != 50 {
		t.Errorf("read = %d (%v), want 50", r.v, r.err)
	}
}

func TestTSOReadAtSmallerTsThanIntentProceeds(t *testing.T) {
	m := NewTSO(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreWrite(bg(), tx(1), ts(10), "x", 1); err != nil {
		t.Fatal(err)
	}
	// A read at ts=5 precedes the pending write; it may proceed.
	v, _, err := m.Read(bg(), tx(2), ts(5), "x")
	if err != nil || v != 10 {
		t.Errorf("read = %d (%v), want 10", v, err)
	}
	m.Abort(tx(1))
	m.Abort(tx(2))
}

func TestTSOWriteAfterIntentAbort(t *testing.T) {
	m := NewTSO(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreWrite(bg(), tx(1), ts(5), "x", 1); err != nil {
		t.Fatal(err)
	}
	m.Abort(tx(1))
	// The aborted intent must not have advanced wts.
	if _, err := m.PreWrite(bg(), tx(2), ts(6), "x", 2); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(2), []model.WriteRecord{rec("x", 2, 1)})
	v, _, err := m.Read(bg(), tx(3), ts(7), "x")
	if err != nil || v != 2 {
		t.Errorf("read = %d (%v)", v, err)
	}
}

// --- MVTSO-specific ---

func TestMVTSOOldReadNeverAborts(t *testing.T) {
	m := NewMVTSO(newStore(), Options{LockTimeout: time.Second})
	// Commit x=1 at ts=10.
	if _, err := m.PreWrite(bg(), tx(1), ts(10), "x", 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 1, 1)})
	// A read at ts=5 succeeds under MVTSO (reads the initial version); this
	// exact case is rejected by basic TSO.
	v, _, err := m.Read(bg(), tx(2), ts(5), "x")
	if err != nil {
		t.Fatalf("old read rejected by MVTSO: %v", err)
	}
	if v != 10 {
		t.Errorf("old read = %d, want initial 10", v)
	}
	// And a read at ts=15 sees the new version.
	v, _, err = m.Read(bg(), tx(3), ts(15), "x")
	if err != nil || v != 1 {
		t.Errorf("new read = %d (%v), want 1", v, err)
	}
}

func TestMVTSOLateWriteUnderReadRejected(t *testing.T) {
	m := NewMVTSO(newStore(), Options{LockTimeout: time.Second})
	if _, _, err := m.Read(bg(), tx(1), ts(10), "x"); err != nil {
		t.Fatal(err) // initial version now has rts=10
	}
	_, err := m.PreWrite(bg(), tx(2), ts(5), "x", 1)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("write under a later read not rejected: %v", err)
	}
}

func TestMVTSOWriteBetweenVersions(t *testing.T) {
	m := NewMVTSO(newStore(), Options{LockTimeout: time.Second})
	// Version at ts=10.
	m.PreWrite(bg(), tx(1), ts(10), "x", 100)
	m.Commit(tx(1), []model.WriteRecord{rec("x", 100, 1)})
	// Read at ts=20 pins version@10's rts to 20.
	if v, _, err := m.Read(bg(), tx(2), ts(20), "x"); err != nil || v != 100 {
		t.Fatalf("read = %d (%v)", v, err)
	}
	// A write at ts=15 would invalidate that read: rejected.
	if _, err := m.PreWrite(bg(), tx(3), ts(15), "x", 150); model.CauseOf(err) != model.AbortCC {
		t.Fatalf("intervening write not rejected: %v", err)
	}
	// A write at ts=25 is fine.
	if _, err := m.PreWrite(bg(), tx(4), ts(25), "x", 250); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx(4), []model.WriteRecord{rec("x", 250, 2)})
	// Historical read still sees version@10.
	if v, _, err := m.Read(bg(), tx(5), ts(12), "x"); err != nil || v != 100 {
		t.Errorf("historical read = %d (%v), want 100", v, err)
	}
}

func TestMVTSOReadWaitsForCloserIntent(t *testing.T) {
	m := NewMVTSO(newStore(), Options{LockTimeout: time.Second})
	if _, err := m.PreWrite(bg(), tx(1), ts(5), "x", 50); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct {
		v   int64
		err error
	}, 1)
	go func() {
		v, _, err := m.Read(bg(), tx(2), ts(10), "x")
		done <- struct {
			v   int64
			err error
		}{v, err}
	}()
	select {
	case <-done:
		t.Fatal("read did not wait for closer pending intent")
	case <-time.After(20 * time.Millisecond):
	}
	m.Commit(tx(1), []model.WriteRecord{rec("x", 50, 1)})
	r := <-done
	if r.err != nil || r.v != 50 {
		t.Errorf("read = %d (%v), want 50", r.v, r.err)
	}
}

func TestMVTSOVersionChainPruned(t *testing.T) {
	m := NewMVTSO(newStore(), Options{LockTimeout: time.Second})
	for i := uint64(1); i <= maxVersionChain+10; i++ {
		if _, err := m.PreWrite(bg(), tx(i), ts(i*10), "x", int64(i)); err != nil {
			t.Fatal(err)
		}
		m.Commit(tx(i), []model.WriteRecord{rec("x", int64(i), model.Version(i))})
	}
	m.mu.Lock()
	n := len(m.items["x"].versions)
	m.mu.Unlock()
	if n > maxVersionChain {
		t.Errorf("version chain length %d exceeds bound %d", n, maxVersionChain)
	}
	// Latest read still correct.
	v, _, err := m.Read(bg(), tx(999), ts(100000), "x")
	if err != nil || v != int64(maxVersionChain+10) {
		t.Errorf("latest read = %d (%v)", v, err)
	}
}
