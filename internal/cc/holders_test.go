package cc

import (
	"context"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
)

// TestHoldersAcrossManagers: every manager reports aged CC holders and
// forgets them on commit/abort — the listing the site-level CC janitor
// sweeps.
func TestHoldersAcrossManagers(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			store := storage.New()
			store.Init(map[model.ItemID]int64{"x": 1, "y": 2})
			m, err := New(name, store, Options{LockTimeout: time.Second})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			held := model.TxID{Site: "A", Seq: 1}
			done := model.TxID{Site: "A", Seq: 2}
			ts := model.Timestamp{Time: 1, Site: "A"}
			if _, err := m.PreWrite(ctx, held, ts, "x", 10); err != nil {
				t.Fatal(err)
			}
			if _, err := m.PreWrite(ctx, done, model.Timestamp{Time: 2, Site: "A"}, "y", 20); err != nil {
				t.Fatal(err)
			}
			m.Abort(done)

			got := m.Holders(0)
			if len(got) != 1 || got[0] != held {
				t.Fatalf("Holders(0) = %v, want just %v", got, held)
			}
			if got := m.Holders(time.Hour); len(got) != 0 {
				t.Errorf("Holders(1h) = %v, want none (fresh state is not aged)", got)
			}

			if err := m.Commit(held, []model.WriteRecord{{Item: "x", Value: 10, Version: 1}}); err != nil {
				t.Fatal(err)
			}
			if got := m.Holders(0); len(got) != 0 {
				t.Errorf("Holders after commit = %v, want none", got)
			}

			// Reinstate (crash recovery) re-registers the holder.
			re := model.TxID{Site: "B", Seq: 3}
			if err := m.Reinstate(re, model.Timestamp{Time: 3, Site: "B"}, []model.WriteRecord{{Item: "y", Value: 30, Version: 2}}); err != nil {
				t.Fatal(err)
			}
			if got := m.Holders(0); len(got) != 1 || got[0] != re {
				t.Errorf("Holders after reinstate = %v, want %v", got, re)
			}
			m.Abort(re)
		})
	}
}
