package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAllOpsHandledOnce submits a known set of operations across shards and
// verifies every one reaches the handler exactly once, on its own shard.
func TestAllOpsHandledOnce(t *testing.T) {
	const shards, ops = 4, 1000
	var mu sync.Mutex
	seen := make(map[int]int)
	p := New(shards, 8, 16, func(shard int, batch []int) {
		mu.Lock()
		defer mu.Unlock()
		for _, op := range batch {
			if op%shards != shard {
				t.Errorf("op %d handled on shard %d, want %d", op, shard, op%shards)
			}
			seen[op]++
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := p.Submit(context.Background(), i%shards, i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != ops {
		t.Fatalf("handled %d distinct ops, want %d", len(seen), ops)
	}
	for op, n := range seen {
		if n != 1 {
			t.Errorf("op %d handled %d times", op, n)
		}
	}
}

// TestBatching verifies the sequencer drains greedily: with the sequencer
// stalled, queued operations arrive as one batch, capped at maxBatch.
func TestBatching(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	var batches [][]int
	var mu sync.Mutex
	p := New(1, 64, 8, func(_ int, batch []int) {
		entered <- struct{}{}
		<-block
		mu.Lock()
		batches = append(batches, append([]int(nil), batch...))
		mu.Unlock()
	})
	defer p.Close()

	// Park the sequencer in the handler with just op 0, then queue 20 more
	// behind it: they must drain as ceil(20/8) = 3 capped batches.
	if err := p.Submit(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 1; i < 21; i++ {
		if err := p.Submit(context.Background(), 0, i); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, b := range batches {
			total += len(b)
		}
		done := total == 21
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("not all ops handled")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 4 { // 1 (the blocker) + 3 drained
		t.Errorf("got %d batches, want 4: %v", len(batches), batches)
	}
	for _, b := range batches {
		if len(b) > 8 {
			t.Errorf("batch exceeds cap: %d ops", len(b))
		}
	}
	if st := p.Stats(); st.MaxBatch != 8 || st.Batches != 4 || st.Submitted != 21 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSubmitAfterCloseFails verifies ErrClosed and that Close drains what
// was accepted.
func TestSubmitAfterCloseFails(t *testing.T) {
	var handled atomic.Int64
	p := New(2, 4, 4, func(_ int, batch []int) { handled.Add(int64(len(batch))) })
	for i := 0; i < 6; i++ {
		if err := p.Submit(context.Background(), i%2, i); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := handled.Load(); got != 6 {
		t.Errorf("Close drained %d ops, want 6", got)
	}
	if err := p.Submit(context.Background(), 0, 9); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestBackpressureBlocksAndCounts fills a queue behind a stalled sequencer:
// Submit must block (counted as a stall), not drop, and unblock when the
// sequencer drains; a context cancellation must abort a blocked Submit.
func TestBackpressureBlocksAndCounts(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	p := New(1, 2, 2, func(_ int, batch []int) {
		entered <- struct{}{}
		<-block
	})
	defer p.Close()

	// Park the sequencer in the handler with op 0, then fill the depth-2
	// queue behind it: the shard is saturated.
	if err := p.Submit(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 1; i < 3; i++ {
		if err := p.Submit(context.Background(), 0, i); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Submit(ctx, 0, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Submit on full queue = %v, want deadline exceeded", err)
	}
	if st := p.Stats(); st.Stalls == 0 {
		t.Error("full-queue Submit not counted as a stall")
	}

	done := make(chan error, 1)
	go func() { done <- p.Submit(context.Background(), 0, 100) }()
	close(block) // sequencer drains; the blocked Submit must complete
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("blocked Submit after drain: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Submit deadlocked on a draining queue")
	}
}

// TestSequencerSingleWriter proves the single-writer guarantee: handlers for
// the same shard never overlap (checked with a per-shard reentrancy flag),
// even under heavy concurrent submission. Run with -race.
func TestSequencerSingleWriter(t *testing.T) {
	const shards = 4
	var inHandler [shards]atomic.Bool
	var total atomic.Int64
	p := New(shards, 16, 8, func(shard int, batch []int) {
		if !inHandler[shard].CompareAndSwap(false, true) {
			t.Errorf("concurrent handler invocations on shard %d", shard)
		}
		total.Add(int64(len(batch)))
		inHandler[shard].Store(false)
	})
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := p.Submit(context.Background(), (g+i)%shards, i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	if got := total.Load(); got != goroutines*per {
		t.Errorf("handled %d ops, want %d", got, goroutines*per)
	}
}

// TestConcurrentSubmitClose races Submit against Close: no panic (send on
// closed channel), every Submit either succeeds (and is handled) or returns
// ErrClosed. Run with -race.
func TestConcurrentSubmitClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		var handled, accepted atomic.Int64
		p := New(2, 8, 8, func(_ int, batch []int) { handled.Add(int64(len(batch))) })
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					if err := p.Submit(context.Background(), i%2, i); err != nil {
						return
					}
					accepted.Add(1)
				}
			}()
		}
		time.Sleep(time.Duration(round%5) * time.Millisecond)
		p.Close()
		wg.Wait()
		if handled.Load() != accepted.Load() {
			t.Fatalf("round %d: accepted %d but handled %d", round, accepted.Load(), handled.Load())
		}
	}
}
