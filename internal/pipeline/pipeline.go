// Package pipeline implements the per-shard single-writer command pipelines
// behind a Rainbow site's copy-operation hot path. Incoming operations are
// demuxed by item shard onto bounded per-shard input queues, each drained by
// one sequencer goroutine that processes operations in batches: the
// sequencer blocks for the first queued operation, greedily drains the rest
// of the queue (up to a batch cap), and hands the whole slice to the
// handler. Downstream costs that amortize across a batch — site-state
// snapshots, tombstone checks, clock witnessing, reply flushes on the
// coalescing transport — are then paid once per batch instead of once per
// operation, and shard-local state is touched by exactly one goroutine, so
// the contended-shard path sheds its mutex ping-pong.
//
// Backpressure is by bounded queue: Submit tries a non-blocking enqueue
// first and then blocks (counted as a stall) until the sequencer frees a
// slot or the caller's context is done. The queue is never unbounded and
// the sequencer never blocks on Submit, so the two cannot deadlock.
package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Submit after Close; callers fall back to their
// direct (unpipelined) path.
var ErrClosed = errors.New("pipeline: closed")

// Handler processes one drained batch on the shard's sequencer goroutine.
// It is invoked by one goroutine per shard (never concurrently for the same
// shard) and must not block indefinitely: slow work belongs on a spill
// goroutine, or it stalls every operation queued behind the batch.
type Handler[T any] func(shard int, batch []T)

// Defaults for construction knobs (<= 0 selects these).
const (
	DefaultQueueDepth = 256
	DefaultMaxBatch   = 64
)

// Pipeline is a set of per-shard sequencers. The shard count is fixed at
// construction; items are mapped to shards by the caller (sites use the
// shared shard.Hash so placement agrees with the storage and lock stripes).
type Pipeline[T any] struct {
	handler  Handler[T]
	maxBatch int
	queues   []chan T
	wg       sync.WaitGroup

	// closeMu serializes Submit's enqueue with Close's channel close: Submit
	// holds the read side across the send so Close cannot close a channel
	// mid-send (send on closed channel panics). The sequencers keep draining
	// until close, so a blocked Submit always completes and the write lock
	// is never starved behind a dead queue.
	closeMu sync.RWMutex
	closed  bool

	submitted atomic.Uint64
	batches   atomic.Uint64
	stalls    atomic.Uint64
	maxSeen   atomic.Uint64
}

// Stats is a point-in-time snapshot of pipeline counters.
type Stats struct {
	Shards    int    // sequencer count
	Depth     int    // operations currently queued across all shards
	Submitted uint64 // operations accepted by Submit
	Batches   uint64 // batches handed to the handler
	MaxBatch  uint64 // largest batch drained so far
	Stalls    uint64 // Submits that found their queue full and blocked
}

// New builds and starts a pipeline with the given shard count. depth bounds
// each per-shard queue and maxBatch caps one drained batch; non-positive
// values select the defaults. shards must be a power of two >= 1 (callers
// normalize via the shared shard package).
func New[T any](shards, depth, maxBatch int, h Handler[T]) *Pipeline[T] {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	p := &Pipeline[T]{
		handler:  h,
		maxBatch: maxBatch,
		queues:   make([]chan T, shards),
	}
	for i := range p.queues {
		p.queues[i] = make(chan T, depth)
		p.wg.Add(1)
		go p.sequence(i, p.queues[i])
	}
	return p
}

// Shards returns the sequencer count (a power of two; callers mask hashes
// with Shards()-1).
func (p *Pipeline[T]) Shards() int { return len(p.queues) }

// Submit enqueues op onto its shard's queue. It returns ErrClosed after
// Close, or the context error if the queue stays full until ctx is done.
func (p *Pipeline[T]) Submit(ctx context.Context, shard int, op T) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	ch := p.queues[shard]
	select {
	case ch <- op:
		p.submitted.Add(1)
		return nil
	default:
	}
	// Queue full: block — this is the backpressure that keeps a flooded
	// shard from buffering unboundedly.
	p.stalls.Add(1)
	select {
	case ch <- op:
		p.submitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sequence is one shard's sequencer: block for the first operation, drain
// greedily up to the batch cap, hand the batch to the handler, repeat.
// Close drains the queue (every accepted operation is handled) before the
// goroutine exits.
func (p *Pipeline[T]) sequence(shard int, ch chan T) {
	defer p.wg.Done()
	batch := make([]T, 0, p.maxBatch)
	for op := range ch {
		batch = append(batch[:0], op)
	drain:
		for len(batch) < p.maxBatch {
			select {
			case next, ok := <-ch:
				if !ok {
					break drain
				}
				batch = append(batch, next)
			default:
				break drain
			}
		}
		p.batches.Add(1)
		if n := uint64(len(batch)); n > p.maxSeen.Load() {
			p.maxSeen.Store(n) // single writer per shard; cross-shard race only loses a high-water tie
		}
		p.handler(shard, batch)
	}
}

// Close stops the pipeline: subsequent Submits fail with ErrClosed, queued
// operations are drained through the handler, and Close returns once every
// sequencer has exited.
func (p *Pipeline[T]) Close() {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	for _, ch := range p.queues {
		close(ch)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
}

// Stats snapshots the pipeline counters.
func (p *Pipeline[T]) Stats() Stats {
	st := Stats{
		Shards:    len(p.queues),
		Submitted: p.submitted.Load(),
		Batches:   p.batches.Load(),
		MaxBatch:  p.maxSeen.Load(),
		Stalls:    p.stalls.Load(),
	}
	for _, ch := range p.queues {
		st.Depth += len(ch)
	}
	return st
}
