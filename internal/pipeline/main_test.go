package pipeline

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the suite if any sequencer goroutine outlives the tests
// — Stop must drain and join every shard worker.
func TestMain(m *testing.M) { testutil.VerifyMain(m) }
