// Package clock provides the logical clock each Rainbow site uses to assign
// transaction timestamps. Timestamps are Lamport clocks with a site-id
// tie-break, giving the total order that timestamp-ordering concurrency
// control requires across sites.
package clock

import (
	"sync"

	"repro/internal/model"
)

// Clock is a Lamport clock bound to one site. The zero value is not usable;
// use New.
type Clock struct {
	site model.SiteID

	mu   sync.Mutex
	time uint64
}

// New returns a clock for the given site starting at time 0.
func New(site model.SiteID) *Clock {
	return &Clock{site: site}
}

// Now ticks the clock and returns a fresh timestamp strictly greater than
// any timestamp previously returned or witnessed.
func (c *Clock) Now() model.Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.time++
	return model.Timestamp{Time: c.time, Site: c.site}
}

// Witness advances the clock past an observed remote timestamp, preserving
// the Lamport happened-before property for messages that carry timestamps.
func (c *Clock) Witness(ts model.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts.Time > c.time {
		c.time = ts.Time
	}
}

// Peek returns the current time without ticking (for tests and monitors).
func (c *Clock) Peek() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.time
}
