package clock

import (
	"sync"
	"testing"

	"repro/internal/model"
)

func TestNowMonotonic(t *testing.T) {
	c := New("S1")
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		ts := c.Now()
		if !prev.Less(ts) {
			t.Fatalf("timestamp %v not after %v", ts, prev)
		}
		prev = ts
	}
}

func TestWitnessAdvances(t *testing.T) {
	c := New("S1")
	c.Witness(model.Timestamp{Time: 100, Site: "S2"})
	ts := c.Now()
	if ts.Time <= 100 {
		t.Errorf("Now after Witness(100) = %v, want > 100", ts.Time)
	}
}

func TestWitnessNeverRewinds(t *testing.T) {
	c := New("S1")
	for i := 0; i < 50; i++ {
		c.Now()
	}
	before := c.Peek()
	c.Witness(model.Timestamp{Time: 1, Site: "S2"})
	if c.Peek() != before {
		t.Errorf("Witness of old timestamp changed clock: %d -> %d", before, c.Peek())
	}
}

func TestConcurrentUnique(t *testing.T) {
	c := New("S1")
	const goroutines, per = 8, 500
	out := make(chan model.Timestamp, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out <- c.Now()
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[model.Timestamp]bool)
	for ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %v", ts)
		}
		seen[ts] = true
	}
	if len(seen) != goroutines*per {
		t.Errorf("got %d unique timestamps, want %d", len(seen), goroutines*per)
	}
}

func TestSiteTieBreak(t *testing.T) {
	a, b := New("S1"), New("S2")
	ta, tb := a.Now(), b.Now()
	if ta.Time != tb.Time {
		t.Fatalf("clocks out of sync in test setup")
	}
	if !ta.Less(tb) {
		t.Error("equal times should order by site id")
	}
}
