package schema

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

func catalogWithSites(n int) *Catalog {
	c := NewCatalog()
	for i := 0; i < n; i++ {
		id := model.SiteID(string(rune('A' + i)))
		c.Sites[id] = SiteInfo{ID: id}
	}
	return c
}

func TestNewCatalogDefaults(t *testing.T) {
	c := NewCatalog()
	if c.Protocols.RCP != "qc" || c.Protocols.CCP != "2pl" || c.Protocols.ACP != "2pc" {
		t.Errorf("defaults = %+v", c.Protocols)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("empty catalog should validate: %v", err)
	}
}

func TestReplicateEverywhere(t *testing.T) {
	c := catalogWithSites(3)
	c.ReplicateEverywhere("x", 100)
	m := c.Items["x"]
	if len(m.Votes) != 3 || m.ReadQuorum != 2 || m.WriteQuorum != 2 || m.Initial != 100 {
		t.Errorf("meta = %+v", m)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlaceCopies(t *testing.T) {
	c := catalogWithSites(5)
	c.PlaceCopies("x", 7, "A", "C", "E")
	m := c.Items["x"]
	if len(m.Votes) != 3 {
		t.Errorf("votes = %v", m.Votes)
	}
	if _, ok := m.Votes["B"]; ok {
		t.Error("copy placed on unrequested site")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesUnregisteredSite(t *testing.T) {
	c := catalogWithSites(2)
	c.PlaceCopies("x", 0, "A", "B", "Z")
	if err := c.Validate(); err == nil {
		t.Error("copy on unregistered site accepted")
	}
}

func TestValidateCatchesBadProtocols(t *testing.T) {
	for _, mod := range []func(*Catalog){
		func(c *Catalog) { c.Protocols.RCP = "paxos" },
		func(c *Catalog) { c.Protocols.CCP = "occ" },
		func(c *Catalog) { c.Protocols.ACP = "1pc" },
	} {
		c := catalogWithSites(1)
		mod(c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad protocol accepted: %+v", c.Protocols)
		}
	}
}

func TestValidateCatchesBadQuorum(t *testing.T) {
	c := catalogWithSites(3)
	c.Items["x"] = ItemMeta{
		Item:        "x",
		Votes:       map[model.SiteID]int{"A": 1, "B": 1, "C": 1},
		ReadQuorum:  1,
		WriteQuorum: 1, // write/write quorums don't intersect
	}
	if err := c.Validate(); err == nil {
		t.Error("non-intersecting write quorum accepted")
	}
}

func TestValidateCatchesKeyMismatch(t *testing.T) {
	c := catalogWithSites(1)
	c.Items["x"] = ItemMeta{Item: "y", Votes: map[model.SiteID]int{"A": 1}, ReadQuorum: 1, WriteQuorum: 1}
	if err := c.Validate(); err == nil {
		t.Error("item keyed under wrong id accepted")
	}
}

func TestLocalItems(t *testing.T) {
	c := catalogWithSites(3)
	c.PlaceCopies("x", 10, "A", "B", "C")
	c.PlaceCopies("y", 20, "A")
	c.PlaceCopies("z", 30, "B", "C", "A")

	la := c.LocalItems("A")
	if len(la) != 3 || la["x"] != 10 || la["y"] != 20 || la["z"] != 30 {
		t.Errorf("LocalItems(A) = %v", la)
	}
	lb := c.LocalItems("B")
	if len(lb) != 2 {
		t.Errorf("LocalItems(B) = %v", lb)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := catalogWithSites(2)
	c.PlaceCopies("x", 1, "A", "B")
	c.Epoch = 5
	cl := c.Clone()
	cl.Sites["Z"] = SiteInfo{ID: "Z"}
	cl.Items["x"].Votes["A"] = 99
	if _, ok := c.Sites["Z"]; ok {
		t.Error("clone shares Sites map")
	}
	if c.Items["x"].Votes["A"] != 1 {
		t.Error("clone shares Votes map")
	}
	if cl.Epoch != 5 {
		t.Error("epoch not copied")
	}
}

func TestSiteAndItemIDsSorted(t *testing.T) {
	c := NewCatalog()
	for _, id := range []model.SiteID{"S3", "S1", "S2"} {
		c.Sites[id] = SiteInfo{ID: id}
	}
	c.PlaceCopies("b", 0, "S1")
	c.PlaceCopies("a", 0, "S2")
	s := c.SiteIDs()
	if s[0] != "S1" || s[2] != "S3" {
		t.Errorf("SiteIDs = %v", s)
	}
	it := c.ItemIDs()
	if it[0] != "a" || it[1] != "b" {
		t.Errorf("ItemIDs = %v", it)
	}
}

func TestTimeoutsWithDefaults(t *testing.T) {
	ts := Timeouts{}.WithDefaults()
	if ts.Op == 0 || ts.Vote == 0 || ts.Ack == 0 || ts.Lock == 0 || ts.OrphanResolve == 0 {
		t.Errorf("defaults not filled: %+v", ts)
	}
	custom := Timeouts{Op: time.Minute}.WithDefaults()
	if custom.Op != time.Minute {
		t.Error("explicit value overwritten")
	}
}

func TestItemMetaSitesSorted(t *testing.T) {
	m := ItemMeta{Votes: map[model.SiteID]int{"C": 1, "A": 1, "B": 1}}
	s := m.Sites()
	if len(s) != 3 || s[0] != "A" || s[2] != "C" {
		t.Errorf("Sites = %v", s)
	}
}

func TestDiffFromFlagsChangedFacets(t *testing.T) {
	base := NewCatalog()
	base.Sites["S1"] = SiteInfo{ID: "S1"}
	base.Sites["S2"] = SiteInfo{ID: "S2"}
	base.ReplicateEverywhere("x", 1)
	base.Epoch = 3

	cases := []struct {
		name   string
		mutate func(*Catalog)
		want   Diff
	}{
		{"none", func(c *Catalog) {}, Diff{EpochFrom: 3, EpochTo: 4}},
		{"shards", func(c *Catalog) { c.Shards = 8 }, Diff{EpochFrom: 3, EpochTo: 4, Shards: true}},
		{"checkpoint", func(c *Catalog) { c.Checkpoint.DeltaMax = 4 }, Diff{EpochFrom: 3, EpochTo: 4, Checkpoint: true}},
		{"protocols", func(c *Catalog) { c.Protocols.ACP = "3pc" }, Diff{EpochFrom: 3, EpochTo: 4, Protocols: true}},
		{"timeouts", func(c *Catalog) { c.Timeouts.Op = time.Second }, Diff{EpochFrom: 3, EpochTo: 4, Timeouts: true}},
		{"sites", func(c *Catalog) { c.Sites["S3"] = SiteInfo{ID: "S3"} }, Diff{EpochFrom: 3, EpochTo: 4, Sites: true}},
		{"items-added", func(c *Catalog) { c.ReplicateEverywhere("y", 2) }, Diff{EpochFrom: 3, EpochTo: 4, Items: true}},
		{"items-revoted", func(c *Catalog) {
			m := c.Items["x"]
			votes := map[model.SiteID]int{"S1": 2, "S2": 1}
			m.Votes, m.ReadQuorum, m.WriteQuorum = votes, 2, 2
			c.Items["x"] = m
		}, Diff{EpochFrom: 3, EpochTo: 4, Items: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			next := base.Clone()
			next.Epoch++
			tc.mutate(next)
			if got := next.DiffFrom(base); got != tc.want {
				t.Errorf("diff = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestDiffMaterial(t *testing.T) {
	if (Diff{Sites: true}).Material() {
		t.Error("a pure site-registration diff must be immaterial")
	}
	if (Diff{}).Material() {
		t.Error("empty diff must be immaterial")
	}
	for _, d := range []Diff{{Items: true}, {Shards: true}, {Checkpoint: true}, {Protocols: true}, {Timeouts: true}} {
		if !d.Material() {
			t.Errorf("%+v must be material", d)
		}
	}
}

func TestDiffString(t *testing.T) {
	s := Diff{EpochFrom: 1, EpochTo: 2, Shards: true, Items: true}.String()
	if !strings.Contains(s, "epoch 1->2") || !strings.Contains(s, "shards") || !strings.Contains(s, "items") {
		t.Errorf("diff string = %q", s)
	}
	if s := (Diff{EpochFrom: 2, EpochTo: 3}).String(); !strings.Contains(s, "no material change") {
		t.Errorf("immaterial diff string = %q", s)
	}
}

func TestDiffRequiresRebuild(t *testing.T) {
	if (Diff{Timeouts: true}).RequiresRebuild() {
		t.Error("timeouts-only diff must not require a rebuild")
	}
	if (Diff{Sites: true}).RequiresRebuild() {
		t.Error("registration diff must not require a rebuild")
	}
	for _, d := range []Diff{{Items: true}, {Shards: true}, {Checkpoint: true}, {Protocols: true}} {
		if !d.RequiresRebuild() {
			t.Errorf("%+v must require a rebuild", d)
		}
	}
}
