package schema

import (
	"testing"
	"time"

	"repro/internal/model"
)

func catalogWithSites(n int) *Catalog {
	c := NewCatalog()
	for i := 0; i < n; i++ {
		id := model.SiteID(string(rune('A' + i)))
		c.Sites[id] = SiteInfo{ID: id}
	}
	return c
}

func TestNewCatalogDefaults(t *testing.T) {
	c := NewCatalog()
	if c.Protocols.RCP != "qc" || c.Protocols.CCP != "2pl" || c.Protocols.ACP != "2pc" {
		t.Errorf("defaults = %+v", c.Protocols)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("empty catalog should validate: %v", err)
	}
}

func TestReplicateEverywhere(t *testing.T) {
	c := catalogWithSites(3)
	c.ReplicateEverywhere("x", 100)
	m := c.Items["x"]
	if len(m.Votes) != 3 || m.ReadQuorum != 2 || m.WriteQuorum != 2 || m.Initial != 100 {
		t.Errorf("meta = %+v", m)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlaceCopies(t *testing.T) {
	c := catalogWithSites(5)
	c.PlaceCopies("x", 7, "A", "C", "E")
	m := c.Items["x"]
	if len(m.Votes) != 3 {
		t.Errorf("votes = %v", m.Votes)
	}
	if _, ok := m.Votes["B"]; ok {
		t.Error("copy placed on unrequested site")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesUnregisteredSite(t *testing.T) {
	c := catalogWithSites(2)
	c.PlaceCopies("x", 0, "A", "B", "Z")
	if err := c.Validate(); err == nil {
		t.Error("copy on unregistered site accepted")
	}
}

func TestValidateCatchesBadProtocols(t *testing.T) {
	for _, mod := range []func(*Catalog){
		func(c *Catalog) { c.Protocols.RCP = "paxos" },
		func(c *Catalog) { c.Protocols.CCP = "occ" },
		func(c *Catalog) { c.Protocols.ACP = "1pc" },
	} {
		c := catalogWithSites(1)
		mod(c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad protocol accepted: %+v", c.Protocols)
		}
	}
}

func TestValidateCatchesBadQuorum(t *testing.T) {
	c := catalogWithSites(3)
	c.Items["x"] = ItemMeta{
		Item:        "x",
		Votes:       map[model.SiteID]int{"A": 1, "B": 1, "C": 1},
		ReadQuorum:  1,
		WriteQuorum: 1, // write/write quorums don't intersect
	}
	if err := c.Validate(); err == nil {
		t.Error("non-intersecting write quorum accepted")
	}
}

func TestValidateCatchesKeyMismatch(t *testing.T) {
	c := catalogWithSites(1)
	c.Items["x"] = ItemMeta{Item: "y", Votes: map[model.SiteID]int{"A": 1}, ReadQuorum: 1, WriteQuorum: 1}
	if err := c.Validate(); err == nil {
		t.Error("item keyed under wrong id accepted")
	}
}

func TestLocalItems(t *testing.T) {
	c := catalogWithSites(3)
	c.PlaceCopies("x", 10, "A", "B", "C")
	c.PlaceCopies("y", 20, "A")
	c.PlaceCopies("z", 30, "B", "C", "A")

	la := c.LocalItems("A")
	if len(la) != 3 || la["x"] != 10 || la["y"] != 20 || la["z"] != 30 {
		t.Errorf("LocalItems(A) = %v", la)
	}
	lb := c.LocalItems("B")
	if len(lb) != 2 {
		t.Errorf("LocalItems(B) = %v", lb)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := catalogWithSites(2)
	c.PlaceCopies("x", 1, "A", "B")
	c.Epoch = 5
	cl := c.Clone()
	cl.Sites["Z"] = SiteInfo{ID: "Z"}
	cl.Items["x"].Votes["A"] = 99
	if _, ok := c.Sites["Z"]; ok {
		t.Error("clone shares Sites map")
	}
	if c.Items["x"].Votes["A"] != 1 {
		t.Error("clone shares Votes map")
	}
	if cl.Epoch != 5 {
		t.Error("epoch not copied")
	}
}

func TestSiteAndItemIDsSorted(t *testing.T) {
	c := NewCatalog()
	for _, id := range []model.SiteID{"S3", "S1", "S2"} {
		c.Sites[id] = SiteInfo{ID: id}
	}
	c.PlaceCopies("b", 0, "S1")
	c.PlaceCopies("a", 0, "S2")
	s := c.SiteIDs()
	if s[0] != "S1" || s[2] != "S3" {
		t.Errorf("SiteIDs = %v", s)
	}
	it := c.ItemIDs()
	if it[0] != "a" || it[1] != "b" {
		t.Errorf("ItemIDs = %v", it)
	}
}

func TestTimeoutsWithDefaults(t *testing.T) {
	ts := Timeouts{}.WithDefaults()
	if ts.Op == 0 || ts.Vote == 0 || ts.Ack == 0 || ts.Lock == 0 || ts.OrphanResolve == 0 {
		t.Errorf("defaults not filled: %+v", ts)
	}
	custom := Timeouts{Op: time.Minute}.WithDefaults()
	if custom.Op != time.Minute {
		t.Error("explicit value overwritten")
	}
}

func TestItemMetaSitesSorted(t *testing.T) {
	m := ItemMeta{Votes: map[model.SiteID]int{"C": 1, "A": 1, "B": 1}}
	s := m.Sites()
	if len(s) != 3 || s[0] != "A" || s[2] != "C" {
		t.Errorf("Sites = %v", s)
	}
}
