// Package schema defines the Rainbow catalog: the metadata the name server
// stores and every site caches — site endpoint registrations, the database
// schema (items, initial values), the replication/distribution schema (which
// sites hold copies, with what votes and quorum thresholds), and the
// protocol selection (RCP/CCP/ACP) for the Rainbow instance.
package schema

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/quorum"
)

// SiteInfo is one site's registration entry.
type SiteInfo struct {
	ID model.SiteID
	// Addr is the transport endpoint specification (host:port under tcpnet;
	// informational under simnet).
	Addr string
}

// ItemMeta describes one logical item: its initial value and its
// replication schema.
type ItemMeta struct {
	Item    model.ItemID
	Initial int64
	// Votes maps each copy-holding site to its vote weight.
	Votes map[model.SiteID]int
	// ReadQuorum/WriteQuorum are the weighted-voting thresholds used by the
	// QC replication protocol. ROWA ignores them.
	ReadQuorum  int
	WriteQuorum int
}

// Assignment converts the item's replication schema to a quorum.Assignment.
func (m ItemMeta) Assignment() quorum.Assignment {
	return quorum.Assignment{Votes: m.Votes, ReadQuorum: m.ReadQuorum, WriteQuorum: m.WriteQuorum}
}

// Sites returns the copy-holding sites in sorted order.
func (m ItemMeta) Sites() []model.SiteID {
	out := make([]model.SiteID, 0, len(m.Votes))
	for s := range m.Votes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Protocols selects the transaction-processing protocols for an instance
// (paper Figure 4, the protocols-configuration panel).
type Protocols struct {
	// RCP: "rowa" or "qc" (default "qc", the paper's default).
	RCP string
	// CCP: "2pl", "tso" or "mvtso" (default "2pl").
	CCP string
	// ACP: "2pc" or "3pc" (default "2pc", the paper's default).
	ACP string
	// NoDeadlockDetection turns off 2PL's waits-for-graph cycle detection,
	// leaving deadlocks to lock-wait timeouts — an ablation knob for
	// classroom experiments on deadlock handling.
	NoDeadlockDetection bool
	// NoReadOnlyOpt disables the commit protocols' read-only participant
	// optimization (participants without writes vote "read" and skip
	// phase 2) — an ablation knob for message-cost experiments.
	NoReadOnlyOpt bool
	// NoHotSplit disables 2PL's split execution of commutative adds
	// (hot-item delta slots with commit-time reconciliation), forcing
	// every add through an ordinary exclusive lock — the cc_no_split
	// ablation knob for hot-key contention experiments.
	NoHotSplit bool
}

// CheckpointPolicy configures each site's checkpoint & log-compaction
// subsystem. Zero values disable the corresponding automatic trigger
// (manual checkpoints always work on logs that support compaction).
type CheckpointPolicy struct {
	// Bytes triggers a checkpoint once this many WAL bytes have been
	// appended since the last one.
	Bytes int64
	// Interval triggers periodic checkpoints.
	Interval time.Duration
	// DeltaMax bounds the consecutive delta (dirty-shards-only) snapshots
	// between full snapshots. 0 means unset — a site-local policy defers to
	// the catalog's value; negative explicitly forces every snapshot full
	// (overriding the catalog).
	DeltaMax int
	// NoCOW disables copy-on-write shard capture, copying the snapshot
	// under the checkpoint gate instead (the decision pipeline stalls for
	// the O(data) copy) — an ablation knob.
	NoCOW bool
	// NoDirtyItems disables per-item dirty tracking: delta snapshots then
	// carry whole dirty shards instead of just the written items — the
	// pre-item (shard-granular) behavior, kept as an ablation knob.
	NoDirtyItems bool
}

// Enabled reports whether any automatic trigger is configured.
func (p CheckpointPolicy) Enabled() bool { return p.Bytes > 0 || p.Interval > 0 }

// PipelinePolicy configures each site's per-shard command pipelines (the
// copy-operation hot path). The zero value enables the pipeline with
// default sizing; Disable is the ablation knob that restores the
// pre-pipeline synchronous serve path.
type PipelinePolicy struct {
	// Disable turns the per-shard pipelines off: copy operations run the
	// synchronous per-request path — an ablation knob for batching
	// experiments.
	Disable bool
	// Depth bounds each per-shard input queue; <= 0 selects the default.
	Depth int
	// MaxBatch caps one drained batch; <= 0 selects the default.
	MaxBatch int
}

// NetPolicy configures the wire transport. Carried in the catalog so an
// experiment's codec selection is recorded cluster-wide; each site applies
// it when it creates its transport (rainbow-site -net-codec), since a live
// catalog update cannot renegotiate already-established connections.
type NetPolicy struct {
	// Codec selects the envelope body codec the transport negotiates:
	// "" or "binary" (default: compact binary, falling back to gob for
	// peers that don't negotiate) or "gob" (pin every connection to gob —
	// the ablation knob for codec experiments).
	Codec string
}

// TracePolicy configures each site's transaction tracer. The zero value
// keeps tracing off (stage histograms still accumulate; only per-transaction
// trace capture is sampled).
type TracePolicy struct {
	// SampleRate is the fraction of home transactions that record a full
	// stage-by-stage trace (0 = none, 1 = all). Sampling is counter-based
	// (every round(1/rate)-th Begin), so any positive rate yields traces.
	SampleRate float64
	// Ring bounds the per-site ring of completed trace fragments; <= 0
	// selects the default capacity.
	Ring int
	// SlowMS, when positive, marks any sampled transaction slower than this
	// many milliseconds end-to-end as slow and hands its trace to the
	// site's slow-trace hook.
	SlowMS int64
}

// Timeouts bounds protocol waits across the instance.
type Timeouts struct {
	// Op bounds one remote copy operation (read / pre-write).
	Op time.Duration
	// Vote bounds the coordinator's wait for each participant vote.
	Vote time.Duration
	// Ack bounds the coordinator's wait for decision acknowledgements.
	Ack time.Duration
	// Lock bounds CCP waits (lock waits, TSO intent gates).
	Lock time.Duration
	// OrphanResolve is the interval at which a recovering or in-doubt
	// participant re-queries for a decision.
	OrphanResolve time.Duration
}

// WithDefaults fills zero fields with defaults sized for the simulated
// network.
func (t Timeouts) WithDefaults() Timeouts {
	def := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&t.Op, 2*time.Second)
	def(&t.Vote, 2*time.Second)
	def(&t.Ack, 2*time.Second)
	def(&t.Lock, 2*time.Second)
	def(&t.OrphanResolve, 500*time.Millisecond)
	return t
}

// Catalog is the name server's full metadata set.
type Catalog struct {
	Sites     map[model.SiteID]SiteInfo
	Items     map[model.ItemID]ItemMeta
	Protocols Protocols
	Timeouts  Timeouts
	// Shards is the per-site data-plane shard count (storage shards and
	// 2PL lock stripes); 0 selects each site's GOMAXPROCS-derived default.
	// Carried in the catalog so sites that fetch their configuration from
	// the name server honor the experiment's setting.
	Shards int
	// Checkpoint is the per-site checkpoint/compaction policy, carried in
	// the catalog for the same reason as Shards.
	Checkpoint CheckpointPolicy
	// Pipeline is the per-site command-pipeline policy, carried in the
	// catalog for the same reason as Shards.
	Pipeline PipelinePolicy
	// Trace is the per-site transaction-tracing policy, carried in the
	// catalog for the same reason as Shards.
	Trace TracePolicy
	// Net is the wire-transport policy, carried in the catalog for the same
	// reason as Shards. Sites apply it at transport creation only.
	Net NetPolicy
	// Epoch increments on every catalog update so sites can detect staleness.
	Epoch uint64
}

// NewCatalog returns an empty catalog with default protocols.
func NewCatalog() *Catalog {
	return &Catalog{
		Sites:     make(map[model.SiteID]SiteInfo),
		Items:     make(map[model.ItemID]ItemMeta),
		Protocols: Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"},
	}
}

// Clone deep-copies the catalog.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{
		Sites:      make(map[model.SiteID]SiteInfo, len(c.Sites)),
		Items:      make(map[model.ItemID]ItemMeta, len(c.Items)),
		Protocols:  c.Protocols,
		Timeouts:   c.Timeouts,
		Shards:     c.Shards,
		Checkpoint: c.Checkpoint,
		Pipeline:   c.Pipeline,
		Trace:      c.Trace,
		Net:        c.Net,
		Epoch:      c.Epoch,
	}
	for k, v := range c.Sites {
		out.Sites[k] = v
	}
	for k, v := range c.Items {
		votes := make(map[model.SiteID]int, len(v.Votes))
		for s, n := range v.Votes {
			votes[s] = n
		}
		v.Votes = votes
		out.Items[k] = v
	}
	return out
}

// SiteIDs returns registered sites in sorted order.
func (c *Catalog) SiteIDs() []model.SiteID {
	out := make([]model.SiteID, 0, len(c.Sites))
	for s := range c.Sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ItemIDs returns configured items in sorted order.
func (c *Catalog) ItemIDs() []model.ItemID {
	out := make([]model.ItemID, 0, len(c.Items))
	for i := range c.Items {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LocalItems returns the item→initial-value map for copies hosted at site,
// used to initialize the site's store.
func (c *Catalog) LocalItems(site model.SiteID) map[model.ItemID]int64 {
	out := make(map[model.ItemID]int64)
	for id, m := range c.Items {
		if _, ok := m.Votes[site]; ok {
			out[id] = m.Initial
		}
	}
	return out
}

// Diff summarizes what changed between two catalog versions. Sites use it
// during online reconfiguration to decide whether an epoch bump needs a
// full protocol-stack rebuild or is metadata-only (site registrations bump
// the epoch too, and chasing those with a rebuild would force a snapshot
// for nothing).
type Diff struct {
	// EpochFrom/EpochTo are the two catalogs' epochs.
	EpochFrom, EpochTo uint64
	// Sites marks changes to the site registrations (ids or endpoints).
	Sites bool
	// Items marks changes to the database/replication schema: items added,
	// removed, re-placed, re-voted or re-quorumed.
	Items bool
	// Shards marks a data-plane shard-count change.
	Shards bool
	// Checkpoint marks a checkpoint/compaction policy change.
	Checkpoint bool
	// Pipeline marks a command-pipeline policy change.
	Pipeline bool
	// Protocols marks an RCP/CCP/ACP (or ablation-knob) change.
	Protocols bool
	// Timeouts marks a protocol-timeout change.
	Timeouts bool
	// Trace marks a tracing-policy change.
	Trace bool
	// Net marks a wire-transport policy change. Like Sites it is not
	// material: the codec is fixed when a site creates its transport, so a
	// running site has nothing to act on — the new policy takes effect at
	// the next process start.
	Net bool
}

// Material reports whether the diff changes anything a site acts on. Pure
// site-registration changes are immaterial: they alter the name server's
// address book, not any site-local structure.
func (d Diff) Material() bool {
	return d.Items || d.Shards || d.Checkpoint || d.Pipeline || d.Protocols || d.Timeouts || d.Trace
}

// RequiresRebuild reports whether the diff needs the full quiesce +
// snapshot + stack-rebuild path. Timeouts-only and trace-only changes are
// material but adopt in place: they touch no store, CC or checkpoint
// structure, and a forced O(store) snapshot plus fence-aborting every
// in-flight transaction would be pure waste for them.
func (d Diff) RequiresRebuild() bool {
	return d.Items || d.Shards || d.Checkpoint || d.Pipeline || d.Protocols
}

// String renders the changed facets for reconfiguration logs.
func (d Diff) String() string {
	parts := []string{fmt.Sprintf("epoch %d->%d", d.EpochFrom, d.EpochTo)}
	for _, f := range []struct {
		on   bool
		name string
	}{
		{d.Sites, "sites"}, {d.Items, "items"}, {d.Shards, "shards"},
		{d.Checkpoint, "checkpoint"}, {d.Pipeline, "pipeline"},
		{d.Protocols, "protocols"}, {d.Timeouts, "timeouts"},
		{d.Trace, "trace"}, {d.Net, "net"},
	} {
		if f.on {
			parts = append(parts, f.name)
		}
	}
	if len(parts) == 1 {
		parts = append(parts, "no material change")
	}
	return strings.Join(parts, " ")
}

// DiffFrom computes what c changes relative to old.
func (c *Catalog) DiffFrom(old *Catalog) Diff {
	d := Diff{
		EpochFrom:  old.Epoch,
		EpochTo:    c.Epoch,
		Shards:     c.Shards != old.Shards,
		Checkpoint: c.Checkpoint != old.Checkpoint,
		Pipeline:   c.Pipeline != old.Pipeline,
		Protocols:  c.Protocols != old.Protocols,
		Timeouts:   c.Timeouts != old.Timeouts,
		Trace:      c.Trace != old.Trace,
		Net:        c.Net != old.Net,
		Sites:      !reflect.DeepEqual(c.Sites, old.Sites),
		Items:      !reflect.DeepEqual(c.Items, old.Items),
	}
	return d
}

// Validate checks internal consistency: every copy placement names a
// registered site, every item has a valid quorum assignment, and the
// protocol names are known.
func (c *Catalog) Validate() error {
	switch c.Protocols.RCP {
	case "rowa", "qc", "":
	default:
		return fmt.Errorf("schema: unknown RCP %q", c.Protocols.RCP)
	}
	switch c.Protocols.CCP {
	case "2pl", "tso", "mvtso", "":
	default:
		return fmt.Errorf("schema: unknown CCP %q", c.Protocols.CCP)
	}
	switch c.Protocols.ACP {
	case "2pc", "3pc", "":
	default:
		return fmt.Errorf("schema: unknown ACP %q", c.Protocols.ACP)
	}
	switch c.Net.Codec {
	case "", "binary", "gob":
	default:
		return fmt.Errorf("schema: unknown net codec %q", c.Net.Codec)
	}
	for id, m := range c.Items {
		if id == "" {
			return fmt.Errorf("schema: empty item id")
		}
		if m.Item != "" && m.Item != id {
			return fmt.Errorf("schema: item %s keyed under %s", m.Item, id)
		}
		for s := range m.Votes {
			if _, ok := c.Sites[s]; !ok {
				return fmt.Errorf("schema: item %s places a copy on unregistered site %s", id, s)
			}
		}
		if err := m.Assignment().Validate(); err != nil {
			return fmt.Errorf("schema: item %s: %w", id, err)
		}
	}
	return nil
}

// ReplicateEverywhere places one copy of item on every registered site with
// majority quorums — the default replication scheme for demos.
func (c *Catalog) ReplicateEverywhere(item model.ItemID, initial int64) {
	sites := c.SiteIDs()
	a := quorum.Majority(sites)
	c.Items[item] = ItemMeta{
		Item:        item,
		Initial:     initial,
		Votes:       a.Votes,
		ReadQuorum:  a.ReadQuorum,
		WriteQuorum: a.WriteQuorum,
	}
}

// PlaceCopies places copies of item on the given sites with one vote each
// and majority quorums.
func (c *Catalog) PlaceCopies(item model.ItemID, initial int64, sites ...model.SiteID) {
	a := quorum.Majority(sites)
	c.Items[item] = ItemMeta{
		Item:        item,
		Initial:     initial,
		Votes:       a.Votes,
		ReadQuorum:  a.ReadQuorum,
		WriteQuorum: a.WriteQuorum,
	}
}
