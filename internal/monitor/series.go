package monitor

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// Sample is one point of a sampled statistic series.
type Sample struct {
	At    time.Duration // offset from sampler start
	Value float64
}

// Series is a named sequence of samples (throughput over time, orphan count
// over time, …) — the data behind the GUI's Display-menu graphs.
type Series struct {
	Name    string
	Samples []Sample
}

// Last returns the most recent sample value (0 when empty).
func (s *Series) Last() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].Value
}

// Sampler periodically evaluates probe functions and accumulates series.
type Sampler struct {
	mu      sync.Mutex
	start   time.Time
	series  map[string]*Series
	order   []string
	probes  map[string]func() float64
	stop    chan struct{}
	stopped sync.WaitGroup
	running bool
}

// NewSampler returns an idle sampler.
func NewSampler() *Sampler {
	return &Sampler{
		series: make(map[string]*Series),
		probes: make(map[string]func() float64),
	}
}

// Probe registers a named statistic to sample. Must be called before Start.
func (s *Sampler) Probe(name string, f func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.probes[name]; !dup {
		s.order = append(s.order, name)
	}
	s.probes[name] = f
	s.series[name] = &Series{Name: name}
}

// Start samples every interval until Stop. Starting a running sampler is a
// no-op.
func (s *Sampler) Start(interval time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.start = time.Now()
	s.stop = make(chan struct{})
	s.stopped.Add(1)
	go func() {
		defer s.stopped.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.sampleOnce()
			}
		}
	}()
}

// Stop halts sampling (idempotent) after taking one final sample.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	s.mu.Unlock()
	s.stopped.Wait()
	s.sampleOnce()
}

func (s *Sampler) sampleOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	at := time.Since(s.start)
	for name, probe := range s.probes {
		ser := s.series[name]
		ser.Samples = append(ser.Samples, Sample{At: at, Value: probe()})
	}
}

// Get returns a copy of the named series.
func (s *Sampler) Get(name string) Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[name]
	if !ok {
		return Series{Name: name}
	}
	out := Series{Name: name, Samples: make([]Sample, len(ser.Samples))}
	copy(out.Samples, ser.Samples)
	return out
}

// All returns every series in registration order.
func (s *Sampler) All() []Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Series, 0, len(s.order))
	for _, name := range s.order {
		ser := s.series[name]
		cp := Series{Name: name, Samples: make([]Sample, len(ser.Samples))}
		copy(cp.Samples, ser.Samples)
		out = append(out, cp)
	}
	return out
}

// Chart renders a series as a fixed-size ASCII chart — the terminal
// stand-in for the Rainbow GUI's result graphs.
func Chart(s Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	if len(s.Samples) == 0 {
		b.WriteString("(no samples)\n")
		return b.String()
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, p := range s.Samples {
		min = math.Min(min, p.Value)
		max = math.Max(max, p.Value)
	}
	if max == min {
		max = min + 1
	}
	// Downsample/bucket samples into width columns (mean per bucket).
	cols := make([]float64, width)
	counts := make([]int, width)
	span := s.Samples[len(s.Samples)-1].At - s.Samples[0].At
	for _, p := range s.Samples {
		c := 0
		if span > 0 {
			c = int(float64(width-1) * float64(p.At-s.Samples[0].At) / float64(span))
		}
		cols[c] += p.Value
		counts[c]++
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		if counts[c] == 0 {
			continue
		}
		v := cols[c] / float64(counts[c])
		r := int(float64(height-1) * (v - min) / (max - min))
		grid[height-1-r][c] = '*'
	}
	fmt.Fprintf(&b, "%8.1f ┤%s\n", max, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%8s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%8.1f ┤%s\n", min, string(grid[height-1]))
	fmt.Fprintf(&b, "%8s └%s\n", "", strings.Repeat("─", width))
	pad := width - 10
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%9s 0%s%v\n", "", strings.Repeat(" ", pad), span.Round(time.Millisecond))
	return b.String()
}
