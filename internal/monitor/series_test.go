package monitor

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSamplerCollectsSeries(t *testing.T) {
	var v atomic.Int64
	s := NewSampler()
	s.Probe("val", func() float64 { return float64(v.Load()) })
	s.Start(5 * time.Millisecond)
	for i := 1; i <= 5; i++ {
		v.Store(int64(i * 10))
		time.Sleep(8 * time.Millisecond)
	}
	s.Stop()
	ser := s.Get("val")
	if len(ser.Samples) < 3 {
		t.Fatalf("samples = %d, want several", len(ser.Samples))
	}
	if ser.Last() != 50 {
		t.Errorf("last = %v, want 50 (final sample on Stop)", ser.Last())
	}
	// Monotonic sample times.
	for i := 1; i < len(ser.Samples); i++ {
		if ser.Samples[i].At < ser.Samples[i-1].At {
			t.Fatal("sample times not monotonic")
		}
	}
}

func TestSamplerStopIdempotent(t *testing.T) {
	s := NewSampler()
	s.Probe("x", func() float64 { return 1 })
	s.Start(time.Millisecond)
	s.Stop()
	s.Stop() // must not panic or deadlock
	s.Start(time.Millisecond)
	s.Stop()
}

func TestSamplerUnknownSeries(t *testing.T) {
	s := NewSampler()
	ser := s.Get("nope")
	if len(ser.Samples) != 0 || ser.Last() != 0 {
		t.Errorf("unknown series = %+v", ser)
	}
}

func TestSamplerAllPreservesOrder(t *testing.T) {
	s := NewSampler()
	s.Probe("b", func() float64 { return 1 })
	s.Probe("a", func() float64 { return 2 })
	all := s.All()
	if len(all) != 2 || all[0].Name != "b" || all[1].Name != "a" {
		t.Errorf("All() = %v", all)
	}
}

func TestChartRenders(t *testing.T) {
	ser := Series{Name: "throughput"}
	for i := 0; i < 50; i++ {
		ser.Samples = append(ser.Samples, Sample{
			At:    time.Duration(i) * time.Millisecond,
			Value: float64(i % 10),
		})
	}
	out := Chart(ser, 40, 8)
	if !strings.Contains(out, "throughput") {
		t.Error("chart missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("chart has no data points")
	}
	if !strings.Contains(out, "9.0") || !strings.Contains(out, "0.0") {
		t.Errorf("chart missing min/max labels:\n%s", out)
	}
}

func TestChartEmptyAndConstant(t *testing.T) {
	if out := Chart(Series{Name: "empty"}, 20, 5); !strings.Contains(out, "no samples") {
		t.Errorf("empty chart = %q", out)
	}
	ser := Series{Name: "const", Samples: []Sample{{0, 5}, {time.Second, 5}}}
	out := Chart(ser, 20, 5)
	if !strings.Contains(out, "*") {
		t.Error("constant series should still plot")
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	ser := Series{Name: "x", Samples: []Sample{{0, 1}}}
	out := Chart(ser, 1, 1) // must not panic
	if out == "" {
		t.Error("empty render")
	}
}
