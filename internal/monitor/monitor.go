// Package monitor implements Rainbow's progress monitor (the PM in PMlet):
// per-site transaction statistics, latency histograms, cluster aggregation,
// and the rendering of the paper's "Tx processing output" panel (Figure 5)
// with the full Section-3 statistics list — committed/aborted counts, abort
// rates per cause (RCP/ACP/CCP), commit rate, message traffic per time
// unit, throughput, response times, orphan transactions, round-trip
// message counts, and load balance indicators.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
)

// histBuckets is the number of power-of-two latency buckets, covering
// 1µs (bucket 0) to ~9h (bucket 44).
const histBuckets = 45

// Histogram is a fixed log2-bucket latency histogram. The zero value is
// ready to use.
type Histogram struct {
	Count   uint64
	SumNS   uint64
	MaxNS   uint64
	Buckets [histBuckets]uint64
}

func bucketOf(ns int64) int {
	if ns < 1000 {
		return 0
	}
	b := 0
	for v := uint64(ns) / 1000; v > 0 && b < histBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// Observe adds one latency sample.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Count++
	h.SumNS += uint64(ns)
	if uint64(ns) > h.MaxNS {
		h.MaxNS = uint64(ns)
	}
	h.Buckets[bucketOf(ns)]++
}

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNS / h.Count)
}

// BucketUpperNS returns bucket b's upper edge in nanoseconds (1µs << b).
// Exported for metrics renderers that need the exposition-format edges.
func BucketUpperNS(b int) uint64 { return uint64(1000) << uint(b) }

// NumBuckets is the fixed bucket count of every Histogram.
const NumBuckets = histBuckets

// Quantile estimates the q-quantile (0 < q ≤ 1) by locating the bucket
// containing the target rank and interpolating linearly within it, assuming
// samples spread uniformly across the bucket. The estimate never exceeds
// the observed maximum, so tail quantiles of a one-sample histogram report
// that sample's bucket-resolution value rather than a whole bucket above.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if cum+n < target {
			cum += n
			continue
		}
		// Rank `target` falls in bucket b. Interpolate between the bucket's
		// edges; bucket 0's lower edge is 0 (it holds sub-1µs samples).
		upper := float64(BucketUpperNS(b))
		lower := upper / 2
		if b == 0 {
			lower = 0
		}
		frac := float64(target-cum) / float64(n)
		est := lower + frac*(upper-lower)
		if uint64(est) > h.MaxNS {
			est = float64(h.MaxNS)
		}
		return time.Duration(est)
	}
	return time.Duration(h.MaxNS)
}

// Merge adds other into h.
func (h *Histogram) Merge(other Histogram) {
	h.Count += other.Count
	h.SumNS += other.SumNS
	if other.MaxNS > h.MaxNS {
		h.MaxNS = other.MaxNS
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// SiteStats is a serializable snapshot of one site's counters.
type SiteStats struct {
	Site      model.SiteID
	Began     uint64
	Committed uint64
	Aborted   uint64
	// AbortsByCause keys abort counts by model.AbortCause.String().
	AbortsByCause map[string]uint64
	// Restarts counts workload-level restarts after CC rejections.
	Restarts uint64
	// RoundTrips counts request/response exchanges this site initiated.
	RoundTrips uint64
	// Orphans is the current number of in-doubt (blocked) transactions.
	Orphans int
	// Latency is the response-time distribution of finished transactions.
	Latency Histogram
	// WindowNS is the observation window covered by the counters.
	WindowNS int64
	// Shards is the site's data-plane shard count (storage shards and lock
	// stripes).
	Shards int
	// WALFlushes and WALRecords count WAL force-write cycles and the
	// records they carried; records/flushes is the group-commit batch size.
	WALFlushes uint64
	WALRecords uint64
	// WALSegments and WALBytes gauge the retained log volume (compaction
	// shrinks both).
	WALSegments int
	WALBytes    uint64
	// Checkpoints counts completed checkpoints and SegmentsCompacted the
	// WAL segments deleted by them in the window; CheckpointDeltas is how
	// many of the checkpoints were incremental (dirty-shards-only) deltas.
	Checkpoints       uint64
	CheckpointDeltas  uint64
	SegmentsCompacted uint64
	// CheckpointHorizon is the newest snapshot's replay horizon and
	// CheckpointPauseNS how long taking it stalled the decision pipeline
	// (the snapshot-gate hold); DirtyShards gauges the store shards dirtied
	// since that snapshot — the size of the next delta.
	CheckpointHorizon uint64
	CheckpointPauseNS int64
	DirtyShards       int
	// Decisions is the decision table's current size; retirement on fully
	// acknowledged cohorts keeps it from growing without bound.
	Decisions int
	// RecoveryRecords is the number of WAL records the site's last
	// (re)start replayed and RecoveryNS how long recovery took — the
	// bounded-recovery measures (full-history replay grows without bound;
	// checkpointed replay stays near the bytes-since-last-checkpoint knob).
	RecoveryRecords uint64
	RecoveryNS      int64
	// Epoch is the catalog version the site currently runs, and
	// Reconfigures how many live (no-restart) catalog reconfigurations it
	// has completed — the online re-sharding gauges.
	Epoch        uint64
	Reconfigures uint64
	// StoreShards carries per-shard occupancy and traffic, for spotting
	// hash skew across the sharded store.
	StoreShards []ShardStat
	// Per-shard command-pipeline gauges (all zero when the pipeline is
	// disabled). PipeDepth is the operations queued right now across all
	// sequencers; PipeSubmitted/PipeBatches give the mean admit batch size;
	// PipeMaxBatch is the largest batch drained; PipeStalls counts Submits
	// that found their queue full (backpressure), PipeSpills contended
	// operations that left their sequencer for a blocking-path goroutine.
	PipeDepth     int
	PipeSubmitted uint64
	PipeBatches   uint64
	PipeMaxBatch  uint64
	PipeStalls    uint64
	PipeSpills    uint64
	// Hot-key split-execution gauges (2PL only; zero elsewhere). CCAdds
	// counts blind-add intents admitted, CCSplitAdds the subset admitted
	// lock-free through a split slot, CCSplits/CCDrains the items moved
	// into resp. out of split execution, and SplitItems the items split
	// right now.
	CCAdds      uint64
	CCSplitAdds uint64
	CCSplits    uint64
	CCDrains    uint64
	SplitItems  int
	// ReleasesAbandoned counts release-retry loops that exhausted their
	// attempts and left remote CC cleanup to the presumed-abort janitor.
	ReleasesAbandoned uint64
	// Coalescing-transport gauges (filled under the tcpnet backend; zero on
	// the simulated network). Envelopes per flush is the send-syscall
	// amortization; NetRecvFrames counts decoded multi-envelope frames;
	// NetSendSheds counts sends dropped under backpressure; NetLegacyConns
	// counts accepted connections speaking the old single-envelope framing.
	NetSentEnvelopes uint64
	NetSendFlushes   uint64
	NetRecvEnvelopes uint64
	NetRecvFrames    uint64
	NetSendSheds     uint64
	NetLegacyConns   uint64
	// NetSentBytes counts framed bytes written (the bytes/flush numerator);
	// NetBinaryBodies/NetGobBodies split sent message bodies by the codec
	// they were encoded with, exposing what codec negotiation settled on.
	NetSentBytes    uint64
	NetBinaryBodies uint64
	NetGobBodies    uint64
	// Stages holds per-stage latency histograms keyed by trace stage name
	// (queue, admit, lock_wait, wal_fsync, prepare, net_flush, ...): the
	// always-on aggregates plus the folded spans of sampled traces. Empty
	// stages are omitted.
	Stages map[string]Histogram
	// Trace sampling gauges: transactions sampled, completed fragments
	// retained, fragments evicted from the bounded ring, and root traces
	// over the slow threshold.
	TraceSampled   uint64
	TraceFragments uint64
	TraceEvicted   uint64
	TraceSlow      uint64
}

// PipeBatchSize returns the mean pipeline admit-batch size (operations per
// drained batch).
func (s SiteStats) PipeBatchSize() float64 {
	if s.PipeBatches == 0 {
		return 0
	}
	return float64(s.PipeSubmitted) / float64(s.PipeBatches)
}

// NetCoalescing returns the mean envelopes per transport flush (the send
// syscalls saved by the coalescing sender).
func (s SiteStats) NetCoalescing() float64 {
	if s.NetSendFlushes == 0 {
		return 0
	}
	return float64(s.NetSentEnvelopes) / float64(s.NetSendFlushes)
}

// NetBytesPerFlush returns the mean framed bytes per transport flush (how
// full each coalesced write is).
func (s SiteStats) NetBytesPerFlush() float64 {
	if s.NetSendFlushes == 0 {
		return 0
	}
	return float64(s.NetSentBytes) / float64(s.NetSendFlushes)
}

// ShardStat mirrors one storage shard's occupancy and traffic counters.
type ShardStat struct {
	Items    int
	Hits     uint64
	Installs uint64
}

// ShardSkew returns the coefficient of variation of per-shard lookup
// traffic (0 = perfectly uniform hashing; rising values flag hot shards).
func (s SiteStats) ShardSkew() float64 {
	if len(s.StoreShards) == 0 {
		return 0
	}
	mean := 0.0
	for _, sh := range s.StoreShards {
		mean += float64(sh.Hits)
	}
	mean /= float64(len(s.StoreShards))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, sh := range s.StoreShards {
		d := float64(sh.Hits) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(s.StoreShards))) / mean
}

// ShardOccupancy returns the min and max per-shard item counts.
func (s SiteStats) ShardOccupancy() (min, max int) {
	for i, sh := range s.StoreShards {
		if i == 0 || sh.Items < min {
			min = sh.Items
		}
		if sh.Items > max {
			max = sh.Items
		}
	}
	return min, max
}

// WALBatchSize returns the mean group-commit batch size (records per
// force-write cycle).
func (s SiteStats) WALBatchSize() float64 {
	if s.WALFlushes == 0 {
		return 0
	}
	return float64(s.WALRecords) / float64(s.WALFlushes)
}

// CommitRate returns committed / began.
func (s SiteStats) CommitRate() float64 {
	if s.Began == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Began)
}

// Throughput returns committed transactions per second over the window.
func (s SiteStats) Throughput() float64 {
	if s.WindowNS <= 0 {
		return 0
	}
	return float64(s.Committed) / (float64(s.WindowNS) / 1e9)
}

// Collector gathers one site's statistics. All methods are safe for
// concurrent use.
type Collector struct {
	site model.SiteID

	mu      sync.Mutex
	began   uint64
	commits uint64
	aborts  map[model.AbortCause]uint64
	restart uint64
	rtts    uint64
	lat     Histogram
	start   time.Time
}

// NewCollector builds a collector for site, starting its window now.
func NewCollector(site model.SiteID) *Collector {
	return &Collector{site: site, aborts: make(map[model.AbortCause]uint64), start: time.Now()}
}

// TxBegin counts an admitted transaction.
func (c *Collector) TxBegin() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.began++
}

// TxDone counts a finished transaction and its latency.
func (c *Collector) TxDone(committed bool, cause model.AbortCause, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if committed {
		c.commits++
	} else {
		c.aborts[cause]++
	}
	c.lat.Observe(int64(latency))
}

// TxRestart counts a workload-level restart (a CC-rejected transaction
// resubmitted with a fresh timestamp).
func (c *Collector) TxRestart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restart++
}

// AddRoundTrips counts n request/response exchanges.
func (c *Collector) AddRoundTrips(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rtts += uint64(n)
}

// Snapshot returns the current counters; orphans is sampled by the caller
// (it lives in the ACP participant).
func (c *Collector) Snapshot(orphans int) SiteStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := SiteStats{
		Site:          c.site,
		Began:         c.began,
		Committed:     c.commits,
		Aborted:       0,
		AbortsByCause: make(map[string]uint64, len(c.aborts)),
		Restarts:      c.restart,
		RoundTrips:    c.rtts,
		Orphans:       orphans,
		Latency:       c.lat,
		WindowNS:      int64(time.Since(c.start)),
	}
	for cause, n := range c.aborts {
		s.Aborted += n
		s.AbortsByCause[cause.String()] = n
	}
	return s
}

// Reset zeroes the counters and restarts the window.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.began, c.commits, c.restart, c.rtts = 0, 0, 0, 0
	c.aborts = make(map[model.AbortCause]uint64)
	c.lat = Histogram{}
	c.start = time.Now()
}

// NetStats is the transport-level traffic summary (filled from
// simnet.Stats or tcpnet accounting).
type NetStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
	// CodecBinary/CodecGob split sent messages by body codec.
	CodecBinary uint64
	CodecGob    uint64
}

// Report is the cluster-wide statistics view: the data behind the paper's
// Figure-5 output panel.
type Report struct {
	Sites []SiteStats
	Net   NetStats
	// WindowNS is the maximum site window (the observation period).
	WindowNS int64
}

// Totals aggregates all site stats into one.
func (r Report) Totals() SiteStats {
	out := SiteStats{Site: "TOTAL", AbortsByCause: make(map[string]uint64)}
	for _, s := range r.Sites {
		out.Began += s.Began
		out.Committed += s.Committed
		out.Aborted += s.Aborted
		out.Restarts += s.Restarts
		out.RoundTrips += s.RoundTrips
		out.Orphans += s.Orphans
		for k, v := range s.AbortsByCause {
			out.AbortsByCause[k] += v
		}
		out.Latency.Merge(s.Latency)
		out.WALFlushes += s.WALFlushes
		out.WALRecords += s.WALRecords
		out.WALSegments += s.WALSegments
		out.WALBytes += s.WALBytes
		out.Checkpoints += s.Checkpoints
		out.CheckpointDeltas += s.CheckpointDeltas
		out.SegmentsCompacted += s.SegmentsCompacted
		out.DirtyShards += s.DirtyShards
		out.Decisions += s.Decisions
		if s.CheckpointHorizon > out.CheckpointHorizon {
			out.CheckpointHorizon = s.CheckpointHorizon
		}
		if s.CheckpointPauseNS > out.CheckpointPauseNS {
			out.CheckpointPauseNS = s.CheckpointPauseNS
		}
		out.PipeDepth += s.PipeDepth
		out.PipeSubmitted += s.PipeSubmitted
		out.PipeBatches += s.PipeBatches
		if s.PipeMaxBatch > out.PipeMaxBatch {
			out.PipeMaxBatch = s.PipeMaxBatch
		}
		out.PipeStalls += s.PipeStalls
		out.PipeSpills += s.PipeSpills
		out.CCAdds += s.CCAdds
		out.CCSplitAdds += s.CCSplitAdds
		out.CCSplits += s.CCSplits
		out.CCDrains += s.CCDrains
		out.SplitItems += s.SplitItems
		out.ReleasesAbandoned += s.ReleasesAbandoned
		out.NetSentEnvelopes += s.NetSentEnvelopes
		out.NetSendFlushes += s.NetSendFlushes
		out.NetRecvEnvelopes += s.NetRecvEnvelopes
		out.NetRecvFrames += s.NetRecvFrames
		out.NetSendSheds += s.NetSendSheds
		out.NetLegacyConns += s.NetLegacyConns
		out.NetSentBytes += s.NetSentBytes
		out.NetBinaryBodies += s.NetBinaryBodies
		out.NetGobBodies += s.NetGobBodies
		for name, h := range s.Stages {
			if out.Stages == nil {
				out.Stages = make(map[string]Histogram)
			}
			merged := out.Stages[name]
			merged.Merge(h)
			out.Stages[name] = merged
		}
		out.TraceSampled += s.TraceSampled
		out.TraceFragments += s.TraceFragments
		out.TraceEvicted += s.TraceEvicted
		out.TraceSlow += s.TraceSlow
		out.RecoveryRecords += s.RecoveryRecords
		if s.RecoveryNS > out.RecoveryNS {
			out.RecoveryNS = s.RecoveryNS
		}
		out.Reconfigures += s.Reconfigures
		if s.Epoch > out.Epoch {
			out.Epoch = s.Epoch
		}
		if s.Shards > out.Shards {
			out.Shards = s.Shards
		}
		if s.WindowNS > out.WindowNS {
			out.WindowNS = s.WindowNS
		}
	}
	if r.WindowNS > out.WindowNS {
		out.WindowNS = r.WindowNS
	}
	return out
}

// MessagesPerSecond returns delivered messages per second over the window.
func (r Report) MessagesPerSecond() float64 {
	w := r.Totals().WindowNS
	if w <= 0 {
		return 0
	}
	return float64(r.Net.Delivered) / (float64(w) / 1e9)
}

// LoadImbalance returns the coefficient of variation of per-site admitted
// transaction counts — the paper's "load balance/imbalance indicator".
// Zero means perfectly balanced.
func (r Report) LoadImbalance() float64 {
	if len(r.Sites) == 0 {
		return 0
	}
	mean := 0.0
	for _, s := range r.Sites {
		mean += float64(s.Began)
	}
	mean /= float64(len(r.Sites))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, s := range r.Sites {
		d := float64(s.Began) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(r.Sites))) / mean
}

// MessagesPerCommit returns delivered messages per committed transaction —
// the key series of the quorum-traffic experiment (E2).
func (r Report) MessagesPerCommit() float64 {
	t := r.Totals()
	if t.Committed == 0 {
		return 0
	}
	return float64(r.Net.Delivered) / float64(t.Committed)
}

// Render formats the report as the textual equivalent of the paper's
// transaction-processing output window (Figure 5).
func (r Report) Render() string {
	t := r.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "=== Rainbow Tx Processing Output ===\n")
	fmt.Fprintf(&b, "window: %v\n", time.Duration(t.WindowNS).Round(time.Millisecond))
	fmt.Fprintf(&b, "transactions: began=%d committed=%d aborted=%d restarts=%d\n",
		t.Began, t.Committed, t.Aborted, t.Restarts)
	fmt.Fprintf(&b, "commit rate: %.3f\n", t.CommitRate())
	causes := make([]string, 0, len(t.AbortsByCause))
	for k := range t.AbortsByCause {
		causes = append(causes, k)
	}
	sort.Strings(causes)
	for _, k := range causes {
		n := t.AbortsByCause[k]
		rate := 0.0
		if t.Began > 0 {
			rate = float64(n) / float64(t.Began)
		}
		fmt.Fprintf(&b, "aborts[%s]: %d (rate %.3f)\n", k, n, rate)
	}
	fmt.Fprintf(&b, "throughput: %.1f tx/s\n", t.Throughput())
	fmt.Fprintf(&b, "response time: mean=%v p95=%v max=%v\n",
		t.Latency.Mean().Round(time.Microsecond),
		t.Latency.Quantile(0.95).Round(time.Microsecond),
		time.Duration(t.Latency.MaxNS).Round(time.Microsecond))
	fmt.Fprintf(&b, "messages: sent=%d delivered=%d dropped=%d bytes=%d (%.1f msg/s, %.1f msg/commit)\n",
		r.Net.Sent, r.Net.Delivered, r.Net.Dropped, r.Net.Bytes,
		r.MessagesPerSecond(), r.MessagesPerCommit())
	fmt.Fprintf(&b, "codec: binary=%d gob=%d payloads\n", r.Net.CodecBinary, r.Net.CodecGob)
	fmt.Fprintf(&b, "round trips: %d\n", t.RoundTrips)
	fmt.Fprintf(&b, "orphan transactions: %d\n", t.Orphans)
	fmt.Fprintf(&b, "data plane: %d shards, wal %d records / %d flushes (%.1f recs/flush)\n",
		t.Shards, t.WALRecords, t.WALFlushes, t.WALBatchSize())
	if t.PipeBatches > 0 || t.PipeSpills > 0 {
		fmt.Fprintf(&b, "pipeline: %d ops / %d batches (%.1f ops/batch, max %d), depth=%d stalls=%d spills=%d\n",
			t.PipeSubmitted, t.PipeBatches, t.PipeBatchSize(), t.PipeMaxBatch,
			t.PipeDepth, t.PipeStalls, t.PipeSpills)
	}
	if t.CCAdds > 0 || t.CCSplits > 0 {
		fmt.Fprintf(&b, "hot-key split: %d adds (%d lock-free), %d splits / %d drains, %d items split now\n",
			t.CCAdds, t.CCSplitAdds, t.CCSplits, t.CCDrains, t.SplitItems)
	}
	if t.ReleasesAbandoned > 0 {
		fmt.Fprintf(&b, "releases abandoned to janitor: %d\n", t.ReleasesAbandoned)
	}
	if t.NetSendFlushes > 0 {
		fmt.Fprintf(&b, "net coalescing: %d envelopes / %d flushes (%.1f env/flush, %.0f B/flush), %d frames in, sheds=%d legacy-conns=%d\n",
			t.NetSentEnvelopes, t.NetSendFlushes, t.NetCoalescing(), t.NetBytesPerFlush(),
			t.NetRecvFrames, t.NetSendSheds, t.NetLegacyConns)
	}
	if t.NetBinaryBodies > 0 || t.NetGobBodies > 0 {
		fmt.Fprintf(&b, "net codec: %d binary / %d gob bodies sent\n", t.NetBinaryBodies, t.NetGobBodies)
	}
	if len(t.Stages) > 0 {
		fmt.Fprintf(&b, "stages (count p50/p99/max):\n")
		names := make([]string, 0, len(t.Stages))
		for name := range t.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := t.Stages[name]
			fmt.Fprintf(&b, "  %-10s %8d  %v / %v / %v\n", name, h.Count,
				h.Quantile(0.50).Round(time.Microsecond),
				h.Quantile(0.99).Round(time.Microsecond),
				time.Duration(h.MaxNS).Round(time.Microsecond))
		}
	}
	if t.TraceSampled > 0 {
		fmt.Fprintf(&b, "traces: sampled=%d fragments=%d evicted=%d slow=%d\n",
			t.TraceSampled, t.TraceFragments, t.TraceEvicted, t.TraceSlow)
	}
	fmt.Fprintf(&b, "durability: %d checkpoints (%d deltas), %d segments compacted, wal %d segments / %d bytes retained\n",
		t.Checkpoints, t.CheckpointDeltas, t.SegmentsCompacted, t.WALSegments, t.WALBytes)
	fmt.Fprintf(&b, "checkpoint: horizon=%d gate-pause=%v dirty-shards=%d decisions=%d\n",
		t.CheckpointHorizon, time.Duration(t.CheckpointPauseNS).Round(time.Microsecond),
		t.DirtyShards, t.Decisions)
	fmt.Fprintf(&b, "recovery: replayed %d records in %v (last restart)\n",
		t.RecoveryRecords, time.Duration(t.RecoveryNS).Round(time.Microsecond))
	fmt.Fprintf(&b, "catalog: epoch=%d, %d live reconfigurations\n", t.Epoch, t.Reconfigures)
	fmt.Fprintf(&b, "load imbalance (cv of admissions): %.3f\n", r.LoadImbalance())
	fmt.Fprintf(&b, "per-site:\n")
	for _, s := range r.Sites {
		fmt.Fprintf(&b, "  %-8s began=%-6d committed=%-6d aborted=%-5d orphans=%-3d mean=%v\n",
			s.Site, s.Began, s.Committed, s.Aborted, s.Orphans,
			s.Latency.Mean().Round(time.Microsecond))
		if len(s.StoreShards) > 0 {
			min, max := s.ShardOccupancy()
			fmt.Fprintf(&b, "           store shards: %d, occupancy %d-%d items, hit skew cv=%.3f\n",
				len(s.StoreShards), min, max, s.ShardSkew())
		}
	}
	return b.String()
}
