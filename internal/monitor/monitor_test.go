package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.95) != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(int64(time.Millisecond))
	h.Observe(int64(2 * time.Millisecond))
	h.Observe(int64(3 * time.Millisecond))
	if h.Count != 3 {
		t.Errorf("Count = %d", h.Count)
	}
	if m := h.Mean(); m != 2*time.Millisecond {
		t.Errorf("Mean = %v", m)
	}
	if h.MaxNS != uint64(3*time.Millisecond) {
		t.Errorf("Max = %d", h.MaxNS)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count != 1 || h.SumNS != 0 {
		t.Errorf("negative sample mishandled: %+v", h)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * int64(time.Microsecond))
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if p50 > p95 || p95 > p99 {
		t.Errorf("quantiles not ordered: %v %v %v", p50, p95, p99)
	}
	// p95 of ~1ms data must be within a bucket factor (2x) of the truth.
	if p95 < 500*time.Microsecond || p95 > 4*time.Millisecond {
		t.Errorf("p95 = %v, expected near 950µs", p95)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(int64(time.Millisecond))
	b.Observe(int64(5 * time.Millisecond))
	a.Merge(b)
	if a.Count != 2 || a.MaxNS != uint64(5*time.Millisecond) {
		t.Errorf("merge = %+v", a)
	}
}

func TestCollectorCounters(t *testing.T) {
	c := NewCollector("S1")
	c.TxBegin()
	c.TxBegin()
	c.TxBegin()
	c.TxDone(true, model.AbortNone, time.Millisecond)
	c.TxDone(false, model.AbortCC, 2*time.Millisecond)
	c.TxDone(false, model.AbortRCP, time.Millisecond)
	c.TxRestart()
	c.AddRoundTrips(7)

	s := c.Snapshot(2)
	if s.Began != 3 || s.Committed != 1 || s.Aborted != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.AbortsByCause["ccp"] != 1 || s.AbortsByCause["rcp"] != 1 {
		t.Errorf("aborts = %v", s.AbortsByCause)
	}
	if s.Restarts != 1 || s.RoundTrips != 7 || s.Orphans != 2 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.CommitRate(); got < 0.32 || got > 0.34 {
		t.Errorf("commit rate = %v", got)
	}
	if s.Latency.Count != 3 {
		t.Errorf("latency samples = %d", s.Latency.Count)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector("S1")
	c.TxBegin()
	c.TxDone(true, model.AbortNone, time.Millisecond)
	c.Reset()
	s := c.Snapshot(0)
	if s.Began != 0 || s.Committed != 0 || s.Latency.Count != 0 {
		t.Errorf("reset failed: %+v", s)
	}
}

func TestSiteStatsThroughput(t *testing.T) {
	s := SiteStats{Committed: 100, WindowNS: int64(2 * time.Second)}
	if got := s.Throughput(); got != 50 {
		t.Errorf("Throughput = %v", got)
	}
	if (SiteStats{}).Throughput() != 0 {
		t.Error("zero window should not divide by zero")
	}
	if (SiteStats{}).CommitRate() != 0 {
		t.Error("zero began should not divide by zero")
	}
}

func report() Report {
	mk := func(site model.SiteID, began, committed uint64) SiteStats {
		return SiteStats{
			Site: site, Began: began, Committed: committed,
			Aborted:       began - committed,
			AbortsByCause: map[string]uint64{"ccp": began - committed},
			WindowNS:      int64(time.Second),
		}
	}
	return Report{
		Sites: []SiteStats{mk("S1", 100, 90), mk("S2", 100, 80), mk("S3", 100, 85)},
		Net:   NetStats{Sent: 1000, Delivered: 950, Dropped: 50, Bytes: 100000},
	}
}

func TestReportTotals(t *testing.T) {
	r := report()
	tot := r.Totals()
	if tot.Began != 300 || tot.Committed != 255 || tot.Aborted != 45 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.AbortsByCause["ccp"] != 45 {
		t.Errorf("aborts = %v", tot.AbortsByCause)
	}
}

func TestReportRates(t *testing.T) {
	r := report()
	if mps := r.MessagesPerSecond(); mps < 940 || mps > 960 {
		t.Errorf("msg/s = %v", mps)
	}
	if mpc := r.MessagesPerCommit(); mpc < 3.7 || mpc > 3.8 {
		t.Errorf("msg/commit = %v", mpc)
	}
}

func TestLoadImbalance(t *testing.T) {
	r := report()
	if cv := r.LoadImbalance(); cv != 0 {
		t.Errorf("balanced load should be cv=0, got %v", cv)
	}
	r.Sites[0].Began = 400
	if cv := r.LoadImbalance(); cv <= 0 {
		t.Error("imbalanced load should have cv > 0")
	}
	if (Report{}).LoadImbalance() != 0 {
		t.Error("empty report should be 0")
	}
}

func TestRenderContainsPaperStatistics(t *testing.T) {
	out := report().Render()
	// Every statistic of the paper's Section-3 list must appear.
	for _, want := range []string{
		"committed=", "aborted=", "commit rate:", "aborts[ccp]:",
		"throughput:", "response time:", "messages:", "msg/s",
		"round trips:", "orphan transactions:", "load imbalance",
		"per-site:", "S1", "S2", "S3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestRenderContainsDurabilityStatistics(t *testing.T) {
	r := report()
	r.Sites[0].Checkpoints = 3
	r.Sites[0].SegmentsCompacted = 7
	r.Sites[0].WALSegments = 2
	r.Sites[0].WALBytes = 4096
	r.Sites[0].RecoveryRecords = 12
	r.Sites[0].RecoveryNS = int64(3 * time.Millisecond)
	r.Sites[0].StoreShards = []ShardStat{{Items: 4, Hits: 10}, {Items: 5, Hits: 30}}
	out := r.Render()
	for _, want := range []string{
		"durability:", "3 checkpoints", "7 segments compacted",
		"recovery: replayed 12 records", "store shards: 2", "occupancy 4-5",
		"hit skew",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestShardSkewAndOccupancy(t *testing.T) {
	var s SiteStats
	if s.ShardSkew() != 0 {
		t.Error("no shards should mean zero skew")
	}
	s.StoreShards = []ShardStat{{Items: 3, Hits: 50}, {Items: 9, Hits: 50}}
	if got := s.ShardSkew(); got != 0 {
		t.Errorf("uniform hits should give skew 0, got %f", got)
	}
	min, max := s.ShardOccupancy()
	if min != 3 || max != 9 {
		t.Errorf("occupancy = %d-%d, want 3-9", min, max)
	}
	s.StoreShards = []ShardStat{{Hits: 100}, {Hits: 0}}
	if got := s.ShardSkew(); got <= 0.9 {
		t.Errorf("fully skewed hits should give cv ~1, got %f", got)
	}
	// Totals carry the durability counters through.
	r := report()
	r.Sites[1].Checkpoints = 2
	r.Sites[2].SegmentsCompacted = 4
	tot := r.Totals()
	if tot.Checkpoints != 2 || tot.SegmentsCompacted != 4 {
		t.Errorf("totals lost durability counters: %+v", tot)
	}
}
