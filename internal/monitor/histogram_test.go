package monitor

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v", q, got)
		}
	}

	// One sample: every quantile collapses onto that sample's value — the
	// estimate is clamped to the observed maximum, never a bucket above.
	var one Histogram
	one.Observe(int64(700 * time.Microsecond))
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 700*time.Microsecond {
			t.Errorf("one-sample Quantile(%v) = %v, want 700µs", q, got)
		}
	}

	// q=0 rounds up to rank 1 (the minimum), q=1 reaches the last occupied
	// bucket, and the whole curve is monotone in q.
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * int64(time.Microsecond))
	}
	if lo := h.Quantile(0); lo <= 0 || lo > 10*time.Microsecond {
		t.Errorf("Quantile(0) = %v, want a near-minimum value", lo)
	}
	if hi := h.Quantile(1); hi != time.Millisecond {
		t.Errorf("Quantile(1) = %v, want the max (1ms)", hi)
	}
	prev := time.Duration(-1)
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v after %v", q, cur, prev)
		}
		prev = cur
	}

	// A sub-microsecond population interpolates inside bucket 0, whose lower
	// edge is zero.
	var sub Histogram
	for i := 0; i < 100; i++ {
		sub.Observe(500)
	}
	if got := sub.Quantile(0.5); got <= 0 || got > time.Microsecond {
		t.Errorf("sub-µs Quantile(0.5) = %v", got)
	}

	// Samples beyond the last bucket edge clamp into the last bucket and
	// still report through MaxNS.
	var big Histogram
	big.Observe(int64(time.Hour) * 100)
	if got := big.Quantile(0.99); got != 100*time.Hour {
		t.Errorf("overflow Quantile(0.99) = %v", got)
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sample := func(n int) Histogram {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(int64(50 * time.Millisecond)))
		}
		return h
	}
	a, b, c := sample(100), sample(300), sample(47)

	// (a ⊕ b) ⊕ c  ==  a ⊕ (b ⊕ c)
	left := a
	left.Merge(b)
	left.Merge(c)
	bc := b
	bc.Merge(c)
	right := a
	right.Merge(bc)
	if left != right {
		t.Fatalf("Merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}

	// Merging with the zero histogram is the identity.
	id := a
	id.Merge(Histogram{})
	if id != a {
		t.Errorf("Merge with zero changed the histogram")
	}

	// The merged aggregate equals observing the union directly.
	rng2 := rand.New(rand.NewSource(42))
	var union Histogram
	for i := 0; i < 447; i++ {
		union.Observe(rng2.Int63n(int64(50 * time.Millisecond)))
	}
	if left != union {
		t.Errorf("merged sum diverges from the union histogram")
	}
}
