// Package lock implements the lock manager used by Rainbow's two-phase
// locking CCP: shared/exclusive item locks with FIFO queuing, lock
// upgrades, waits-for-graph deadlock detection, and wait timeouts.
//
// The lock table is striped: items hash to a fixed power-of-two array of
// shards, each with its own mutex, item map and per-transaction held set,
// so requests for unrelated items never serialize on a global lock. A
// striped registry records which shards each transaction touches, and
// ReleaseAll walks exactly those shards in index order (one at a time),
// which keeps the manager internally deadlock-free.
//
// The waits-for graph deliberately stays global, behind its own mutex: a
// deadlock cycle routinely spans items in different shards (T1 holds x in
// shard 0 and waits for y in shard 3 held by T2, which waits for x), so a
// per-shard graph could never close a cross-shard cycle. The lock order is
// always shard mutex → waits mutex. Each blocked request runs its cycle
// check and publishes its edges in a single waits-mutex critical section,
// so of two requests that come to block on each other — even in different
// shards — the later one always sees the earlier one's edges and detects
// the cycle; striping loses no local detection. Timeouts remain the safety
// net for distributed deadlocks no single site can see.
//
// Deadlock handling follows the classic local scheme: each blocked request
// adds waits-for edges from the requester to every conflicting holder and
// to conflicting waiters queued ahead of it; a cycle through the new edges
// aborts the requester immediately (the requester is the victim). Timeouts
// provide the safety net for distributed deadlocks that no single site can
// see.
package lock

import (
	"context"
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/shard"
	"repro/internal/trace"
)

// ErrWouldBlock is returned by TryAcquire where Acquire would queue. The
// request leaves no lock state behind: no grant, no waiter, no waits-for
// edge.
var ErrWouldBlock = errors.New("lock: would block")

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota + 1
	Exclusive
)

// String renders "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Options configures a Manager.
type Options struct {
	// Timeout bounds each wait; 0 disables timeouts. Timed-out requests
	// abort with cause CC.
	Timeout time.Duration
	// DisableDeadlockDetection turns off waits-for cycle checking (leaving
	// only timeouts), which lets classroom experiments observe undetected
	// deadlocks.
	DisableDeadlockDetection bool
	// Shards is the lock-table stripe count, rounded up to a power of two
	// and capped at MaxShards; <= 0 selects a GOMAXPROCS-derived default.
	Shards int
	// Tracer, when set, receives the duration of every actual lock wait
	// (the always-on lock_wait histogram) and attaches wait spans to
	// sampled transactions. Only the slow path pays for it: a fast-path
	// grant never touches the clock.
	Tracer *trace.Tracer
}

// MaxShards bounds the stripe count; it also lets a transaction's
// touched-shard set fit one uint64 bitmask (stripes beyond the core count
// buy nothing anyway).
const MaxShards = 64

// txStripes is the stripe count of the touched-shard registry.
const txStripes = 64

// Stats counts lock-manager events for the progress monitor.
type Stats struct {
	Grants    uint64
	Waits     uint64
	Deadlocks uint64
	Timeouts  uint64
	Upgrades  uint64
}

// lockShard is one stripe of the lock table.
type lockShard struct {
	mu    sync.Mutex
	items map[model.ItemID]*itemLock
	// held tracks, per transaction, the items it locks in this shard (for
	// ReleaseAll). Each item appears once: grants append it, and an
	// upgrade replaces the mode in the item's holder entry without
	// re-appending.
	held map[model.TxID][]model.ItemID
	// waiting tracks the items on which a transaction currently has a
	// queued waiter, so ReleaseAll scans only those queues instead of every
	// item in the shard.
	waiting map[model.TxID]map[model.ItemID]bool
}

// Manager is a per-site lock manager. All methods are safe for concurrent
// use.
type Manager struct {
	opts   Options
	shards []*lockShard
	mask   uint32

	// waitsMu guards the global waits-for graph. Lock order: a shard mutex
	// may be held when taking waitsMu, never the reverse.
	waitsMu sync.Mutex
	waits   map[model.TxID]map[model.TxID]bool

	// txMu/txShards stripe a registry of which shards each transaction has
	// touched (a bitmask), so ReleaseAll visits only those shards instead
	// of walking the whole table. Keyed by the transaction's sequence
	// number, which spreads uniformly.
	txMu     [txStripes]sync.Mutex
	txShards [txStripes]map[model.TxID]uint64

	grants    atomic.Uint64
	waitCount atomic.Uint64
	deadlocks atomic.Uint64
	timeouts  atomic.Uint64
	upgrades  atomic.Uint64
}

type itemLock struct {
	holders map[model.TxID]Mode
	queue   []*waiter
}

type waiter struct {
	tx      model.TxID
	mode    Mode
	upgrade bool
	ready   chan error // buffered(1); receives nil on grant
}

// New returns a lock manager with the given options.
func New(opts Options) *Manager {
	n := shard.Normalize(opts.Shards, MaxShards)
	m := &Manager{
		opts:   opts,
		shards: make([]*lockShard, n),
		mask:   uint32(n - 1),
		waits:  make(map[model.TxID]map[model.TxID]bool),
	}
	for i := range m.shards {
		m.shards[i] = &lockShard{
			items:   make(map[model.ItemID]*itemLock),
			held:    make(map[model.TxID][]model.ItemID),
			waiting: make(map[model.TxID]map[model.ItemID]bool),
		}
	}
	for i := range m.txShards {
		m.txShards[i] = make(map[model.TxID]uint64)
	}
	return m
}

// markTouched records that tx has used shard idx; ReleaseAll later consumes
// (and clears) the mask.
func (m *Manager) markTouched(tx model.TxID, idx int) {
	s := int(tx.Seq % txStripes)
	bit := uint64(1) << uint(idx)
	m.txMu[s].Lock()
	if m.txShards[s][tx]&bit == 0 {
		m.txShards[s][tx] |= bit
	}
	m.txMu[s].Unlock()
}

// takeTouched returns and clears tx's touched-shard mask.
func (m *Manager) takeTouched(tx model.TxID) uint64 {
	s := int(tx.Seq % txStripes)
	m.txMu[s].Lock()
	mask := m.txShards[s][tx]
	delete(m.txShards[s], tx)
	m.txMu[s].Unlock()
	return mask
}

// ShardCount returns the lock-table stripe count.
func (m *Manager) ShardCount() int { return len(m.shards) }

func (m *Manager) shardIndexOf(item model.ItemID) int {
	return int(shard.Hash(item) & m.mask)
}

func (m *Manager) shardOf(item model.ItemID) *lockShard {
	return m.shards[m.shardIndexOf(item)]
}

// Stats snapshots the event counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Grants:    m.grants.Load(),
		Waits:     m.waitCount.Load(),
		Deadlocks: m.deadlocks.Load(),
		Timeouts:  m.timeouts.Load(),
		Upgrades:  m.upgrades.Load(),
	}
}

// Idle reports whether item currently has no holders and no queued waiters.
// The 2PL hot-item split machinery uses it as the safety check before moving
// an item into lock-free blind-add admission: a split created while any
// transaction holds (or waits for) the item's lock could commute a delta
// past an absolute writer's exclusion or a reader's repeatability.
func (m *Manager) Idle(item model.ItemID) bool {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	il := sh.items[item]
	return il == nil || (len(il.holders) == 0 && len(il.queue) == 0)
}

// Holding returns the mode tx holds on item (0 if none).
func (m *Manager) Holding(tx model.TxID, item model.ItemID) Mode {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	il := sh.items[item]
	if il == nil {
		return 0
	}
	return il.holders[tx]
}

// Acquire obtains item in the given mode for tx, blocking until granted,
// deadlock-aborted, timed out, or ctx is done. Re-acquiring an equal or
// weaker mode is a no-op; Shared→Exclusive upgrades are supported.
func (m *Manager) Acquire(ctx context.Context, tx model.TxID, item model.ItemID, mode Mode) error {
	idx := m.shardIndexOf(item)
	sh := m.shards[idx]
	sh.mu.Lock()
	il := sh.items[item]
	if il == nil {
		il = &itemLock{holders: make(map[model.TxID]Mode)}
		sh.items[item] = il
	}

	cur := il.holders[tx]
	if cur >= mode {
		sh.mu.Unlock()
		return nil // already held strongly enough
	}
	// Mark before any grant or queue entry exists, so ReleaseAll can never
	// miss this shard. Re-acquires returned above without marking: their
	// original grant already set the bit.
	m.markTouched(tx, idx)
	upgrade := cur == Shared && mode == Exclusive

	// A new request is granted only if it is compatible with the holders
	// AND does not jump queued conflicting waiters (FIFO fairness).
	if holdersCompatible(il, tx, mode, upgrade) && !queueConflicts(il, tx, mode) {
		m.grantLocked(sh, item, il, tx, mode, upgrade)
		sh.mu.Unlock()
		return nil
	}

	// Must wait: build waits-for edges to everything blocking us. The
	// deadlock check and the edge publication happen in one waitsMu
	// critical section, while the shard is still locked, so a concurrent
	// grant in this shard cannot clear edges before they exist.
	w := &waiter{tx: tx, mode: mode, upgrade: upgrade, ready: make(chan error, 1)}
	blockers := blockers(il, tx, mode, upgrade)
	m.waitsMu.Lock()
	if !m.opts.DisableDeadlockDetection && m.wouldDeadlockLocked(tx, blockers) {
		m.waitsMu.Unlock()
		m.deadlocks.Add(1)
		sh.mu.Unlock()
		return model.Abortf(model.AbortCC, "deadlock: %s waiting for %s(%s)", tx, item, mode)
	}
	for _, b := range blockers {
		if m.waits[tx] == nil {
			m.waits[tx] = make(map[model.TxID]bool)
		}
		m.waits[tx][b] = true
	}
	m.waitsMu.Unlock()
	il.queue = append(il.queue, w)
	if sh.waiting[tx] == nil {
		sh.waiting[tx] = make(map[model.ItemID]bool)
	}
	sh.waiting[tx][item] = true
	m.waitCount.Add(1)
	sh.mu.Unlock()

	// The timeout timer is armed only on this slow path; the fast-path
	// grant above never pays for a timer.
	if m.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.Timeout)
		defer cancel()
	}

	// Wait accounting is also slow-path-only: the clock reads and the
	// histogram insert amortize against parking a goroutine.
	if m.opts.Tracer != nil {
		waitStart := time.Now()
		defer func() {
			d := time.Since(waitStart)
			m.opts.Tracer.Observe(trace.StageLockWait, d)
			trace.FromContext(ctx).Record(trace.StageLockWait, waitStart, d, string(item))
		}()
	}

	select {
	case err := <-w.ready:
		return err
	case <-ctx.Done():
		sh.mu.Lock()
		select {
		case err := <-w.ready:
			// Granted just as we timed out: accept the grant; the caller
			// still owns the lock and will release it with the transaction.
			sh.mu.Unlock()
			return err
		default:
		}
		removeWaiter(il, w)
		clearWaiting(sh, tx, item)
		m.clearEdges(tx)
		m.timeouts.Add(1)
		m.grantWaitersLocked(sh, item, il)
		sh.mu.Unlock()
		return model.Abortf(model.AbortCC, "lock timeout: %s on %s(%s)", tx, item, mode)
	}
}

// TryAcquire is Acquire's non-blocking variant, used by the per-shard
// pipeline sequencers: it grants on exactly Acquire's fast path (mode
// compatible with the holders and no queued conflicting waiter) and returns
// ErrWouldBlock where Acquire would queue — never a timer, never a
// waits-for edge. A would-block answer leaves no trace, so the caller can
// retry through the blocking Acquire without double-registering anything.
func (m *Manager) TryAcquire(tx model.TxID, item model.ItemID, mode Mode) error {
	idx := m.shardIndexOf(item)
	sh := m.shards[idx]
	sh.mu.Lock()
	il := sh.items[item]
	if il == nil {
		il = &itemLock{holders: make(map[model.TxID]Mode)}
		sh.items[item] = il
	}
	cur := il.holders[tx]
	if cur >= mode {
		sh.mu.Unlock()
		return nil // already held strongly enough
	}
	upgrade := cur == Shared && mode == Exclusive
	if holdersCompatible(il, tx, mode, upgrade) && !queueConflicts(il, tx, mode) {
		m.markTouched(tx, idx)
		m.grantLocked(sh, item, il, tx, mode, upgrade)
		sh.mu.Unlock()
		return nil
	}
	sh.mu.Unlock()
	return ErrWouldBlock
}

// ReleaseAll drops every lock tx holds and removes it from all wait queues,
// then grants newly compatible waiters. Called at commit/abort (strict 2PL).
// Only the shards tx actually touched are visited, one at a time in index
// order, so the walk can never deadlock with concurrent acquisitions.
func (m *Manager) ReleaseAll(tx model.TxID) {
	mask := m.takeTouched(tx)
	for mask != 0 {
		idx := bits.TrailingZeros64(mask)
		mask &^= uint64(1) << uint(idx)
		sh := m.shards[idx]
		sh.mu.Lock()
		for _, item := range sh.held[tx] {
			il := sh.items[item]
			if il == nil {
				continue
			}
			delete(il.holders, tx)
			m.grantWaitersLocked(sh, item, il)
		}
		delete(sh.held, tx)
		// Remove tx from the queues it is waiting in (an aborting tx may
		// still be queued); the waiting index names exactly those items.
		for item := range sh.waiting[tx] {
			il := sh.items[item]
			if il == nil {
				continue
			}
			changed := false
			for i := 0; i < len(il.queue); {
				if il.queue[i].tx == tx {
					il.queue[i].ready <- model.Abortf(model.AbortCC, "transaction released while waiting")
					il.queue = append(il.queue[:i], il.queue[i+1:]...)
					changed = true
				} else {
					i++
				}
			}
			if changed {
				m.grantWaitersLocked(sh, item, il)
			}
		}
		delete(sh.waiting, tx)
		sh.mu.Unlock()
	}
	m.waitsMu.Lock()
	delete(m.waits, tx)
	// Other transactions' edges pointing at tx are now stale; drop them.
	for _, es := range m.waits {
		delete(es, tx)
	}
	m.waitsMu.Unlock()
}

// holdersCompatible reports whether mode is compatible with the current
// holder set (ignoring tx's own holding, which an upgrade replaces).
func holdersCompatible(il *itemLock, tx model.TxID, mode Mode, upgrade bool) bool {
	if upgrade {
		// Upgrade is grantable only when tx is the sole holder.
		if len(il.holders) != 1 {
			return false
		}
		_, sole := il.holders[tx]
		return sole
	}
	for h, hm := range il.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// queueConflicts reports whether a conflicting waiter is already queued
// (FIFO fairness for new requests only — waiters being granted from the
// head of the queue are never blocked by waiters behind them).
func queueConflicts(il *itemLock, tx model.TxID, mode Mode) bool {
	for _, q := range il.queue {
		if q.tx == tx {
			continue
		}
		if mode == Exclusive || q.mode == Exclusive {
			return true
		}
	}
	return false
}

// blockers lists the transactions tx would wait for on item.
func blockers(il *itemLock, tx model.TxID, mode Mode, upgrade bool) []model.TxID {
	var out []model.TxID
	for h, hm := range il.holders {
		if h == tx {
			continue
		}
		if upgrade || mode == Exclusive || hm == Exclusive {
			out = append(out, h)
		}
	}
	for _, q := range il.queue {
		if q.tx == tx {
			continue
		}
		if mode == Exclusive || q.mode == Exclusive {
			out = append(out, q.tx)
		}
	}
	return out
}

// grantLocked records a grant; the caller holds sh.mu.
func (m *Manager) grantLocked(sh *lockShard, item model.ItemID, il *itemLock, tx model.TxID, mode Mode, upgrade bool) {
	il.holders[tx] = mode
	if !upgrade {
		sh.held[tx] = append(sh.held[tx], item)
	}
	m.grants.Add(1)
	if upgrade {
		m.upgrades.Add(1)
	}
}

// grantWaitersLocked grants queued waiters that became compatible, in FIFO
// order, batching consecutive compatible shared requests. The caller holds
// sh.mu.
func (m *Manager) grantWaitersLocked(sh *lockShard, item model.ItemID, il *itemLock) {
	for len(il.queue) > 0 {
		w := il.queue[0]
		if !holdersCompatible(il, w.tx, w.mode, w.upgrade) {
			return
		}
		il.queue = il.queue[1:]
		clearWaiting(sh, w.tx, item)
		m.grantLocked(sh, item, il, w.tx, w.mode, w.upgrade)
		m.clearEdges(w.tx)
		w.ready <- nil
	}
}

// clearWaiting drops item from tx's waiting index; the caller holds sh.mu.
func clearWaiting(sh *lockShard, tx model.TxID, item model.ItemID) {
	if ws := sh.waiting[tx]; ws != nil {
		delete(ws, item)
		if len(ws) == 0 {
			delete(sh.waiting, tx)
		}
	}
}

func removeWaiter(il *itemLock, w *waiter) {
	for i, q := range il.queue {
		if q == w {
			il.queue = append(il.queue[:i], il.queue[i+1:]...)
			return
		}
	}
}

func (m *Manager) clearEdges(tx model.TxID) {
	m.waitsMu.Lock()
	delete(m.waits, tx)
	m.waitsMu.Unlock()
}

// wouldDeadlockLocked reports whether adding edges tx→blockers closes a
// cycle in the waits-for graph (DFS from each blocker looking for tx). The
// caller holds waitsMu.
func (m *Manager) wouldDeadlockLocked(tx model.TxID, blockers []model.TxID) bool {
	seen := make(map[model.TxID]bool)
	var dfs func(model.TxID) bool
	dfs = func(cur model.TxID) bool {
		if cur == tx {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for next := range m.waits[cur] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for _, b := range blockers {
		if dfs(b) {
			return true
		}
	}
	return false
}
