// Package lock implements the lock manager used by Rainbow's two-phase
// locking CCP: shared/exclusive item locks with FIFO queuing, lock
// upgrades, waits-for-graph deadlock detection, and wait timeouts.
//
// Deadlock handling follows the classic local scheme: each blocked request
// adds waits-for edges from the requester to every conflicting holder and
// to conflicting waiters queued ahead of it; a cycle through the new edges
// aborts the requester immediately (the requester is the victim). Timeouts
// provide the safety net for distributed deadlocks that no single site can
// see.
package lock

import (
	"context"
	"sync"
	"time"

	"repro/internal/model"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota + 1
	Exclusive
)

// String renders "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Options configures a Manager.
type Options struct {
	// Timeout bounds each wait; 0 disables timeouts. Timed-out requests
	// abort with cause CC.
	Timeout time.Duration
	// DisableDeadlockDetection turns off waits-for cycle checking (leaving
	// only timeouts), which lets classroom experiments observe undetected
	// deadlocks.
	DisableDeadlockDetection bool
}

// Stats counts lock-manager events for the progress monitor.
type Stats struct {
	Grants    uint64
	Waits     uint64
	Deadlocks uint64
	Timeouts  uint64
	Upgrades  uint64
}

// Manager is a per-site lock manager. All methods are safe for concurrent
// use.
type Manager struct {
	opts Options

	mu    sync.Mutex
	items map[model.ItemID]*itemLock
	// held tracks every item a transaction currently locks, for ReleaseAll.
	held  map[model.TxID]map[model.ItemID]Mode
	waits map[model.TxID]map[model.TxID]bool
	stats Stats
}

type itemLock struct {
	holders map[model.TxID]Mode
	queue   []*waiter
}

type waiter struct {
	tx      model.TxID
	mode    Mode
	upgrade bool
	ready   chan error // buffered(1); receives nil on grant
}

// New returns a lock manager with the given options.
func New(opts Options) *Manager {
	return &Manager{
		opts:  opts,
		items: make(map[model.ItemID]*itemLock),
		held:  make(map[model.TxID]map[model.ItemID]Mode),
		waits: make(map[model.TxID]map[model.TxID]bool),
	}
}

// Stats snapshots the event counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Holding returns the mode tx holds on item (0 if none).
func (m *Manager) Holding(tx model.TxID, item model.ItemID) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.held[tx][item]
}

// Acquire obtains item in the given mode for tx, blocking until granted,
// deadlock-aborted, timed out, or ctx is done. Re-acquiring an equal or
// weaker mode is a no-op; Shared→Exclusive upgrades are supported.
func (m *Manager) Acquire(ctx context.Context, tx model.TxID, item model.ItemID, mode Mode) error {
	if m.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.Timeout)
		defer cancel()
	}

	m.mu.Lock()
	il := m.items[item]
	if il == nil {
		il = &itemLock{holders: make(map[model.TxID]Mode)}
		m.items[item] = il
	}

	cur := il.holders[tx]
	if cur >= mode {
		m.mu.Unlock()
		return nil // already held strongly enough
	}
	upgrade := cur == Shared && mode == Exclusive

	// A new request is granted only if it is compatible with the holders
	// AND does not jump queued conflicting waiters (FIFO fairness).
	if holdersCompatible(il, tx, mode, upgrade) && !m.queueConflicts(il, tx, mode) {
		m.grantLocked(item, il, tx, mode, upgrade)
		m.mu.Unlock()
		return nil
	}

	// Must wait: build waits-for edges to everything blocking us.
	w := &waiter{tx: tx, mode: mode, upgrade: upgrade, ready: make(chan error, 1)}
	blockers := m.blockers(il, tx, mode, upgrade)
	if !m.opts.DisableDeadlockDetection {
		if m.wouldDeadlock(tx, blockers) {
			m.stats.Deadlocks++
			m.mu.Unlock()
			return model.Abortf(model.AbortCC, "deadlock: %s waiting for %s(%s)", tx, item, mode)
		}
	}
	for _, b := range blockers {
		m.addEdge(tx, b)
	}
	il.queue = append(il.queue, w)
	m.stats.Waits++
	m.mu.Unlock()

	select {
	case err := <-w.ready:
		return err
	case <-ctx.Done():
		m.mu.Lock()
		select {
		case err := <-w.ready:
			// Granted just as we timed out: accept the grant; the caller
			// still owns the lock and will release it with the transaction.
			m.mu.Unlock()
			return err
		default:
		}
		m.removeWaiter(il, w)
		m.clearEdges(tx)
		m.stats.Timeouts++
		m.grantWaitersLocked(item, il)
		m.mu.Unlock()
		return model.Abortf(model.AbortCC, "lock timeout: %s on %s(%s)", tx, item, mode)
	}
}

// ReleaseAll drops every lock tx holds and removes it from all wait queues,
// then grants newly compatible waiters. Called at commit/abort (strict 2PL).
func (m *Manager) ReleaseAll(tx model.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for item := range m.held[tx] {
		il := m.items[item]
		if il == nil {
			continue
		}
		delete(il.holders, tx)
		m.grantWaitersLocked(item, il)
	}
	delete(m.held, tx)
	// Remove tx from any queues (an aborting tx may still be queued).
	for item, il := range m.items {
		changed := false
		for i := 0; i < len(il.queue); {
			if il.queue[i].tx == tx {
				il.queue[i].ready <- model.Abortf(model.AbortCC, "transaction released while waiting")
				il.queue = append(il.queue[:i], il.queue[i+1:]...)
				changed = true
			} else {
				i++
			}
		}
		if changed {
			m.grantWaitersLocked(item, il)
		}
	}
	m.clearEdges(tx)
	// Other transactions' edges pointing at tx are now stale; drop them.
	for _, es := range m.waits {
		delete(es, tx)
	}
}

// holdersCompatible reports whether mode is compatible with the current
// holder set (ignoring tx's own holding, which an upgrade replaces).
func holdersCompatible(il *itemLock, tx model.TxID, mode Mode, upgrade bool) bool {
	if upgrade {
		// Upgrade is grantable only when tx is the sole holder.
		if len(il.holders) != 1 {
			return false
		}
		_, sole := il.holders[tx]
		return sole
	}
	for h, hm := range il.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// queueConflicts reports whether a conflicting waiter is already queued
// (FIFO fairness for new requests only — waiters being granted from the
// head of the queue are never blocked by waiters behind them).
func (m *Manager) queueConflicts(il *itemLock, tx model.TxID, mode Mode) bool {
	for _, q := range il.queue {
		if q.tx == tx {
			continue
		}
		if mode == Exclusive || q.mode == Exclusive {
			return true
		}
	}
	return false
}

// blockers lists the transactions tx would wait for on item.
func (m *Manager) blockers(il *itemLock, tx model.TxID, mode Mode, upgrade bool) []model.TxID {
	var out []model.TxID
	for h, hm := range il.holders {
		if h == tx {
			continue
		}
		if upgrade || mode == Exclusive || hm == Exclusive {
			out = append(out, h)
		}
	}
	for _, q := range il.queue {
		if q.tx == tx {
			continue
		}
		if mode == Exclusive || q.mode == Exclusive {
			out = append(out, q.tx)
		}
	}
	return out
}

func (m *Manager) grantLocked(item model.ItemID, il *itemLock, tx model.TxID, mode Mode, upgrade bool) {
	il.holders[tx] = mode
	if m.held[tx] == nil {
		m.held[tx] = make(map[model.ItemID]Mode)
	}
	m.held[tx][item] = mode
	m.stats.Grants++
	if upgrade {
		m.stats.Upgrades++
	}
}

// grantWaitersLocked grants queued waiters that became compatible, in FIFO
// order, batching consecutive compatible shared requests.
func (m *Manager) grantWaitersLocked(item model.ItemID, il *itemLock) {
	for len(il.queue) > 0 {
		w := il.queue[0]
		if !holdersCompatible(il, w.tx, w.mode, w.upgrade) {
			return
		}
		il.queue = il.queue[1:]
		il.holders[w.tx] = w.mode
		if m.held[w.tx] == nil {
			m.held[w.tx] = make(map[model.ItemID]Mode)
		}
		m.held[w.tx][item] = w.mode
		m.stats.Grants++
		if w.upgrade {
			m.stats.Upgrades++
		}
		m.clearEdges(w.tx)
		w.ready <- nil
	}
}

func (m *Manager) removeWaiter(il *itemLock, w *waiter) {
	for i, q := range il.queue {
		if q == w {
			il.queue = append(il.queue[:i], il.queue[i+1:]...)
			return
		}
	}
}

func (m *Manager) addEdge(from, to model.TxID) {
	if m.waits[from] == nil {
		m.waits[from] = make(map[model.TxID]bool)
	}
	m.waits[from][to] = true
}

func (m *Manager) clearEdges(tx model.TxID) {
	delete(m.waits, tx)
}

// wouldDeadlock reports whether adding edges tx→blockers closes a cycle in
// the waits-for graph (DFS from each blocker looking for tx).
func (m *Manager) wouldDeadlock(tx model.TxID, blockers []model.TxID) bool {
	seen := make(map[model.TxID]bool)
	var dfs func(model.TxID) bool
	dfs = func(cur model.TxID) bool {
		if cur == tx {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for next := range m.waits[cur] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for _, b := range blockers {
		if dfs(b) {
			return true
		}
	}
	return false
}
