package lock

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

func tx(seq uint64) model.TxID { return model.TxID{Site: "S", Seq: seq} }

func mustAcquire(t *testing.T, m *Manager, id model.TxID, item model.ItemID, mode Mode) {
	t.Helper()
	if err := m.Acquire(context.Background(), id, item, mode); err != nil {
		t.Fatalf("Acquire(%v, %v, %v): %v", id, item, mode, err)
	}
}

func TestSharedLocksCompatible(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Shared)
	mustAcquire(t, m, tx(2), "x", Shared)
	mustAcquire(t, m, tx(3), "x", Shared)
	if m.Holding(tx(2), "x") != Shared {
		t.Error("tx2 should hold S")
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Exclusive)

	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), tx(2), "x", Shared) }()
	select {
	case err := <-done:
		t.Fatalf("shared lock granted while X held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	m.ReleaseAll(tx(1))
	if err := <-done; err != nil {
		t.Fatalf("shared lock not granted after release: %v", err)
	}
}

func TestSharedBlocksExclusive(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Shared)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), tx(2), "x", Exclusive) }()
	select {
	case <-done:
		t.Fatal("X granted while S held by another tx")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(tx(1))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Exclusive)
	mustAcquire(t, m, tx(1), "x", Exclusive)
	mustAcquire(t, m, tx(1), "x", Shared) // weaker mode under X: no-op
	if m.Holding(tx(1), "x") != Exclusive {
		t.Error("X lock lost by weaker re-acquire")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Shared)
	mustAcquire(t, m, tx(1), "x", Exclusive)
	if m.Holding(tx(1), "x") != Exclusive {
		t.Error("upgrade failed")
	}
	if m.Stats().Upgrades != 1 {
		t.Errorf("Upgrades = %d", m.Stats().Upgrades)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Shared)
	mustAcquire(t, m, tx(2), "x", Shared)

	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), tx(1), "x", Exclusive) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while another reader holds S")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(tx(2))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.Holding(tx(1), "x") != Exclusive {
		t.Error("upgrade not applied after release")
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// Two readers both try to upgrade: a classic unresolvable deadlock.
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Shared)
	mustAcquire(t, m, tx(2), "x", Shared)

	first := make(chan error, 1)
	go func() { first <- m.Acquire(context.Background(), tx(1), "x", Exclusive) }()
	time.Sleep(20 * time.Millisecond) // let tx1 queue

	err := m.Acquire(context.Background(), tx(2), "x", Exclusive)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("second upgrade should deadlock-abort, got %v", err)
	}
	m.ReleaseAll(tx(2))
	if err := <-first; err != nil {
		t.Fatalf("first upgrade should be granted after victim releases: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Exclusive)
	mustAcquire(t, m, tx(2), "y", Exclusive)

	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), tx(1), "y", Exclusive) }()
	time.Sleep(20 * time.Millisecond) // tx1 now waits for tx2

	err := m.Acquire(context.Background(), tx(2), "x", Exclusive)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("cycle not detected: %v", err)
	}
	if m.Stats().Deadlocks != 1 {
		t.Errorf("Deadlocks = %d", m.Stats().Deadlocks)
	}
	m.ReleaseAll(tx(2))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "a", Exclusive)
	mustAcquire(t, m, tx(2), "b", Exclusive)
	mustAcquire(t, m, tx(3), "c", Exclusive)

	e1 := make(chan error, 1)
	e2 := make(chan error, 1)
	go func() { e1 <- m.Acquire(context.Background(), tx(1), "b", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	go func() { e2 <- m.Acquire(context.Background(), tx(2), "c", Exclusive) }()
	time.Sleep(10 * time.Millisecond)

	err := m.Acquire(context.Background(), tx(3), "a", Exclusive)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("3-cycle not detected: %v", err)
	}
	m.ReleaseAll(tx(3))
	if err := <-e2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(tx(2))
	if err := <-e1; err != nil {
		t.Fatal(err)
	}
}

func TestTimeout(t *testing.T) {
	m := New(Options{Timeout: 30 * time.Millisecond})
	mustAcquire(t, m, tx(1), "x", Exclusive)
	start := time.Now()
	err := m.Acquire(context.Background(), tx(2), "x", Exclusive)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("want CC abort on timeout, got %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("timed out too early: %v", d)
	}
	if m.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d", m.Stats().Timeouts)
	}
	// The holder is unaffected.
	if m.Holding(tx(1), "x") != Exclusive {
		t.Error("holder lost its lock on waiter timeout")
	}
}

func TestDeadlockDetectionDisabledFallsBackToTimeout(t *testing.T) {
	m := New(Options{Timeout: 30 * time.Millisecond, DisableDeadlockDetection: true})
	mustAcquire(t, m, tx(1), "x", Exclusive)
	mustAcquire(t, m, tx(2), "y", Exclusive)

	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), tx(1), "y", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	err := m.Acquire(context.Background(), tx(2), "x", Exclusive)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("want timeout abort, got %v", err)
	}
	if m.Stats().Deadlocks != 0 {
		t.Error("deadlock detection ran while disabled")
	}
	m.ReleaseAll(tx(2))
	// tx1 either got y after tx2 released, or timed out itself first —
	// both resolve the deadlock; neither may hang.
	if err := <-done; err != nil && model.CauseOf(err) != model.AbortCC {
		t.Fatal(err)
	}
}

func TestFIFOFairnessWriterNotStarved(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Shared)

	writer := make(chan error, 1)
	go func() { writer <- m.Acquire(context.Background(), tx(2), "x", Exclusive) }()
	time.Sleep(20 * time.Millisecond)

	// A later shared request must queue behind the writer, not jump it.
	reader := make(chan error, 1)
	go func() { reader <- m.Acquire(context.Background(), tx(3), "x", Shared) }()
	select {
	case <-reader:
		t.Fatal("late reader jumped the queued writer")
	case <-time.After(20 * time.Millisecond):
	}

	m.ReleaseAll(tx(1))
	if err := <-writer; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(tx(2))
	if err := <-reader; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllRemovesQueuedWaiter(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), tx(2), "x", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(tx(2)) // tx2 aborts while waiting
	if err := <-done; model.CauseOf(err) != model.AbortCC {
		t.Fatalf("queued waiter should be aborted by ReleaseAll, got %v", err)
	}
	// tx1 still holds; a fresh tx can wait normally.
	m.ReleaseAll(tx(1))
	mustAcquire(t, m, tx(3), "x", Exclusive)
}

func TestContextCancellation(t *testing.T) {
	m := New(Options{})
	mustAcquire(t, m, tx(1), "x", Exclusive)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, tx(2), "x", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; model.CauseOf(err) != model.AbortCC {
		t.Fatalf("cancelled wait should CC-abort, got %v", err)
	}
}

// TestStressInvariant hammers the manager with random lock/unlock cycles and
// checks the core invariant after every grant: an exclusive holder is alone.
func TestStressInvariant(t *testing.T) {
	m := New(Options{Timeout: 100 * time.Millisecond})
	items := []model.ItemID{"a", "b", "c", "d"}
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				id := model.TxID{Site: "S", Seq: uint64(g*1000 + i)}
				n := 1 + rng.Intn(3)
				ok := true
				for j := 0; j < n && ok; j++ {
					item := items[rng.Intn(len(items))]
					mode := Shared
					if rng.Intn(2) == 0 {
						mode = Exclusive
					}
					if err := m.Acquire(context.Background(), id, item, mode); err != nil {
						ok = false
						break
					}
					if mode == Exclusive && !m.soleHolder(id, item) {
						violations.Add(1)
					}
				}
				m.ReleaseAll(id)
			}
		}(g)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d exclusivity violations", v)
	}
	// Everything released: all new requests must succeed immediately.
	for _, item := range items {
		mustAcquire(t, m, tx(999999), item, Exclusive)
	}
}

// soleHolder checks the holder set under the item's shard lock (test helper).
func (m *Manager) soleHolder(id model.TxID, item model.ItemID) bool {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	il := sh.items[item]
	if il == nil {
		return false
	}
	_, ok := il.holders[id]
	return ok && len(il.holders) == 1
}

func TestShardOption(t *testing.T) {
	if got := New(Options{Shards: 3}).ShardCount(); got != 4 {
		t.Errorf("ShardCount with Shards:3 = %d, want 4", got)
	}
	if got := New(Options{Shards: 1}).ShardCount(); got != 1 {
		t.Errorf("ShardCount with Shards:1 = %d, want 1", got)
	}
	if got := New(Options{}).ShardCount(); got < 1 {
		t.Errorf("default ShardCount = %d", got)
	}
}

// TestCrossShardDeadlockDetected builds a deadlock whose two items live in
// different lock-table shards — only the global waits-for graph can close
// the cycle; per-shard graphs never could.
func TestCrossShardDeadlockDetected(t *testing.T) {
	m := New(Options{Shards: 8})
	// Pick two items that provably hash to different shards.
	itemA := model.ItemID("a")
	var itemB model.ItemID
	for i := 0; i < 1000; i++ {
		cand := model.ItemID(fmt.Sprintf("b%d", i))
		if m.shardOf(cand) != m.shardOf(itemA) {
			itemB = cand
			break
		}
	}
	if itemB == "" {
		t.Fatal("could not find items in distinct shards")
	}

	mustAcquire(t, m, tx(1), itemA, Exclusive)
	mustAcquire(t, m, tx(2), itemB, Exclusive)

	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(context.Background(), tx(1), itemB, Exclusive) }()
	// Wait until tx1 is queued on itemB (its waits-for edge published).
	for i := 0; ; i++ {
		if m.Stats().Waits > 0 {
			break
		}
		if i > 500 {
			t.Fatal("tx1 never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// tx2 → itemA closes the cross-shard cycle and must abort immediately.
	err := m.Acquire(context.Background(), tx(2), itemA, Exclusive)
	if err == nil {
		t.Fatal("cross-shard deadlock not detected")
	}
	if m.Stats().Deadlocks != 1 {
		t.Errorf("Deadlocks = %d, want 1", m.Stats().Deadlocks)
	}
	m.ReleaseAll(tx(2))
	if err := <-blocked; err != nil {
		t.Errorf("victim release should unblock tx1: %v", err)
	}
	m.ReleaseAll(tx(1))
}

// TestStripedLockStress hammers every stripe from many goroutines with
// multi-item transactions — run with -race. Items are acquired in global
// (sorted) order so the only aborts come from timeouts under load.
func TestStripedLockStress(t *testing.T) {
	const nItems, goroutines, iters = 48, 12, 150
	items := make([]model.ItemID, nItems)
	for i := range items {
		items[i] = model.ItemID(fmt.Sprintf("i%02d", i))
	}
	m := New(Options{Timeout: 2 * time.Second, Shards: 8})

	var granted, aborted atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				id := model.TxID{Site: "S", Seq: uint64(g*100000 + i)}
				// 2–4 distinct items in index order (global lock order).
				lo := rng.Intn(nItems - 4)
				n := 2 + rng.Intn(3)
				ok := true
				for j := 0; j < n; j++ {
					mode := Shared
					if rng.Intn(3) == 0 {
						mode = Exclusive
					}
					if err := m.Acquire(context.Background(), id, items[lo+j], mode); err != nil {
						aborted.Add(1)
						ok = false
						break
					}
				}
				if ok {
					granted.Add(1)
				}
				m.ReleaseAll(id)
			}
		}(g)
	}
	wg.Wait()
	if granted.Load() == 0 {
		t.Fatal("no transaction ever completed")
	}
	// Quiesced: every item must be immediately lockable again.
	for _, item := range items {
		mustAcquire(t, m, tx(9999999), item, Exclusive)
	}
	m.ReleaseAll(tx(9999999))
	t.Logf("stress: %d completed, %d aborted, stats %+v", granted.Load(), aborted.Load(), m.Stats())
}
