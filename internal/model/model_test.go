package model

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestTxIDString(t *testing.T) {
	id := TxID{Site: "S1", Seq: 42}
	if got, want := id.String(), "S1:42"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTxIDIsZero(t *testing.T) {
	if !(TxID{}).IsZero() {
		t.Error("zero TxID should be zero")
	}
	if (TxID{Site: "S1"}).IsZero() {
		t.Error("non-zero TxID reported zero")
	}
	if (TxID{Seq: 1}).IsZero() {
		t.Error("non-zero TxID reported zero")
	}
}

func TestParseTxIDRoundTrip(t *testing.T) {
	f := func(site string, seq uint64) bool {
		// Site names with ':' are legal because parsing splits on the last ':'.
		id := TxID{Site: SiteID(site), Seq: seq}
		got, err := ParseTxID(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTxIDErrors(t *testing.T) {
	for _, s := range []string{"", "noseq", "S1:", "S1:notanumber", "S1:-3"} {
		if _, err := ParseTxID(s); err == nil {
			t.Errorf("ParseTxID(%q) succeeded, want error", s)
		}
	}
}

func TestTimestampOrder(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		less bool
	}{
		{Timestamp{1, "S1"}, Timestamp{2, "S1"}, true},
		{Timestamp{2, "S1"}, Timestamp{1, "S1"}, false},
		{Timestamp{1, "S1"}, Timestamp{1, "S2"}, true},
		{Timestamp{1, "S2"}, Timestamp{1, "S1"}, false},
		{Timestamp{1, "S1"}, Timestamp{1, "S1"}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestTimestampTotalOrder(t *testing.T) {
	// Antisymmetry and totality: for a != b exactly one of a<b, b<a holds.
	f := func(t1, t2 uint64, s1, s2 string) bool {
		a := Timestamp{Time: t1, Site: SiteID(s1)}
		b := Timestamp{Time: t2, Site: SiteID(s2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimestampIsZero(t *testing.T) {
	if !(Timestamp{}).IsZero() {
		t.Error("zero timestamp should be zero")
	}
	if (Timestamp{Time: 1}).IsZero() || (Timestamp{Site: "x"}).IsZero() {
		t.Error("non-zero timestamp reported zero")
	}
}

func TestOpString(t *testing.T) {
	if got := Read("x").String(); got != "R(x)" {
		t.Errorf("Read op string = %q", got)
	}
	if got := Write("y", 7).String(); got != "W(y=7)" {
		t.Errorf("Write op string = %q", got)
	}
	if got := (Op{}).String(); got != "R()" && got != "?" {
		// zero kind renders "?" via Kind.String inside Sprintf path; exact
		// shape of invalid ops is unimportant, but must not panic.
		_ = got
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(99).String() != "?" {
		t.Error("invalid OpKind should render ?")
	}
}

func TestReadWriteSets(t *testing.T) {
	tx := &Transaction{Ops: []Op{
		Read("a"), Write("b", 1), Read("a"), Write("c", 2), Read("c"), Write("b", 3),
	}}
	rs := tx.ReadSet()
	ws := tx.WriteSet()
	if len(rs) != 2 || rs[0] != "a" || rs[1] != "c" {
		t.Errorf("ReadSet = %v", rs)
	}
	if len(ws) != 2 || ws[0] != "b" || ws[1] != "c" {
		t.Errorf("WriteSet = %v", ws)
	}
}

func TestReadWriteSetsEmpty(t *testing.T) {
	tx := &Transaction{}
	if tx.ReadSet() != nil || tx.WriteSet() != nil {
		t.Error("empty transaction should have nil read/write sets")
	}
}

func TestAbortCauseString(t *testing.T) {
	want := map[AbortCause]string{
		AbortNone:       "none",
		AbortCC:         "ccp",
		AbortRCP:        "rcp",
		AbortACP:        "acp",
		AbortInjected:   "injected",
		AbortClient:     "client",
		AbortCause(200): "unknown",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("AbortCause(%d).String() = %q, want %q", c, got, s)
		}
	}
}

func TestAbortError(t *testing.T) {
	err := Abortf(AbortCC, "deadlock on %s", "x")
	if err.Cause != AbortCC {
		t.Errorf("cause = %v", err.Cause)
	}
	if got := err.Error(); got != "abort(ccp): deadlock on x" {
		t.Errorf("Error() = %q", got)
	}
}

func TestCauseOf(t *testing.T) {
	if CauseOf(nil) != AbortNone {
		t.Error("nil error should map to AbortNone")
	}
	if CauseOf(Abortf(AbortRCP, "no quorum")) != AbortRCP {
		t.Error("abort error cause not extracted")
	}
	if CauseOf(errors.New("boom")) != AbortClient {
		t.Error("generic errors should map to AbortClient")
	}
}
