// Package model defines the core data types shared by every Rainbow
// subsystem: identifiers for sites, items and transactions, logical
// timestamps, transaction operations, versions, abort causes and
// transaction outcomes.
//
// The types here are deliberately small and serializable (gob/JSON) so they
// can cross the wire layer unchanged.
package model

import (
	"fmt"
	"strconv"
	"strings"
)

// SiteID names a Rainbow site (or the name server) uniquely within a
// Rainbow instance. The paper calls these "Rainbow sites"; the name server
// is itself addressable and conventionally uses NameServerID.
type SiteID string

// NameServerID is the well-known address of the Rainbow name server on the
// wire layer. There is exactly one name server per Rainbow instance.
const NameServerID SiteID = "@ns"

// ItemID names a logical database item. Physical copies of an item are
// placed on sites according to the replication schema held by the name
// server.
type ItemID string

// TxID identifies a transaction globally: the home site that accepted it
// plus a per-site sequence number.
type TxID struct {
	Site SiteID
	Seq  uint64
}

// String renders the TxID in the canonical "site:seq" form.
func (t TxID) String() string { return string(t.Site) + ":" + strconv.FormatUint(t.Seq, 10) }

// IsZero reports whether the TxID is the zero value (no transaction).
func (t TxID) IsZero() bool { return t.Site == "" && t.Seq == 0 }

// ParseTxID parses the canonical "site:seq" form produced by TxID.String.
func ParseTxID(s string) (TxID, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return TxID{}, fmt.Errorf("model: malformed tx id %q", s)
	}
	seq, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return TxID{}, fmt.Errorf("model: malformed tx id %q: %v", s, err)
	}
	return TxID{Site: SiteID(s[:i]), Seq: seq}, nil
}

// Timestamp is a Lamport timestamp with a site-id tie-break, giving a total
// order over transactions. It is used by the timestamp-ordering CCPs and to
// order commit decisions deterministically.
type Timestamp struct {
	Time uint64
	Site SiteID
}

// Less reports whether a precedes b in the total timestamp order.
func (a Timestamp) Less(b Timestamp) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Site < b.Site
}

// IsZero reports whether the timestamp is unset.
func (a Timestamp) IsZero() bool { return a.Time == 0 && a.Site == "" }

// String renders the timestamp as "time@site".
func (a Timestamp) String() string {
	return strconv.FormatUint(a.Time, 10) + "@" + string(a.Site)
}

// Ballot is an E3PC termination-election epoch: a totally ordered
// (attempt number, initiator) pair. The live coordinator's pre-commit round
// runs at Ballot{0, coordinator}; termination elections pick strictly
// higher ballots (attempt numbers start at 1), and the initiator component
// breaks ties so no two initiators ever share a ballot. Quorum-based 3PC
// termination stamps every election and pre-decision with its ballot so a
// re-forming partition cannot resurrect a stale attempt against a newer
// decision.
type Ballot struct {
	N    uint64
	Site SiteID
}

// Less reports whether a precedes b in the total ballot order.
func (a Ballot) Less(b Ballot) bool {
	if a.N != b.N {
		return a.N < b.N
	}
	return a.Site < b.Site
}

// IsZero reports whether the ballot is unset (below every coordinator
// ballot).
func (a Ballot) IsZero() bool { return a.N == 0 && a.Site == "" }

// String renders the ballot as "n@site".
func (a Ballot) String() string {
	return strconv.FormatUint(a.N, 10) + "@" + string(a.Site)
}

// OpKind distinguishes read and write operations.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
	// OpAdd is a blind commutative increment: add Value (the delta, possibly
	// negative) to the item without observing it. Because blind adds commute
	// with each other, concurrency control may admit concurrent adds to the
	// same item without mutual exclusion (hot-item split execution); an add
	// never returns the item's value to the client.
	OpAdd
)

// String returns "R", "W" or "A".
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpAdd:
		return "A"
	default:
		return "?"
	}
}

// Op is one operation of a transaction: a read of Item, a write of Value to
// Item, or a blind add of Value to Item. Rainbow items hold int64 values
// (the original system used simple scalar items configured through the GUI).
type Op struct {
	Kind  OpKind
	Item  ItemID
	Value int64 // meaningful for writes and adds only
}

// String renders the op as "R(x)", "W(x=v)" or "A(x+=d)".
func (o Op) String() string {
	switch o.Kind {
	case OpWrite:
		return fmt.Sprintf("W(%s=%d)", o.Item, o.Value)
	case OpAdd:
		return fmt.Sprintf("A(%s+=%d)", o.Item, o.Value)
	}
	return fmt.Sprintf("R(%s)", o.Item)
}

// Read constructs a read operation.
func Read(item ItemID) Op { return Op{Kind: OpRead, Item: item} }

// Write constructs a write operation.
func Write(item ItemID, v int64) Op { return Op{Kind: OpWrite, Item: item, Value: v} }

// Add constructs a blind commutative add operation.
func Add(item ItemID, delta int64) Op { return Op{Kind: OpAdd, Item: item, Value: delta} }

// Transaction is a flat list of operations executed atomically. The home
// site assigns ID and TS on admission.
type Transaction struct {
	ID  TxID
	TS  Timestamp
	Ops []Op
}

// ReadSet returns the distinct items read by the transaction, in first-use
// order.
func (t *Transaction) ReadSet() []ItemID { return t.itemSet(OpRead) }

// WriteSet returns the distinct items written by the transaction (absolute
// writes and blind adds), in first-use order.
func (t *Transaction) WriteSet() []ItemID { return t.itemSet(OpWrite, OpAdd) }

func (t *Transaction) itemSet(kinds ...OpKind) []ItemID {
	seen := make(map[ItemID]bool, len(t.Ops))
	var out []ItemID
	for _, op := range t.Ops {
		match := false
		for _, k := range kinds {
			if op.Kind == k {
				match = true
				break
			}
		}
		if match && !seen[op.Item] {
			seen[op.Item] = true
			out = append(out, op.Item)
		}
	}
	return out
}

// Version numbers a physical copy of an item. Quorum consensus installs
// max(version in write quorum)+1 on writes and returns the max-version value
// from a read quorum.
type Version uint64

// AbortCause classifies why a transaction aborted, matching the paper's
// per-protocol abort statistics (Section 3: "abort rates for each type").
type AbortCause uint8

// Abort causes.
const (
	AbortNone     AbortCause = iota // transaction committed
	AbortCC                         // concurrency control: deadlock, timestamp rejection, lock timeout
	AbortRCP                        // replication control: quorum unavailable / copy unreachable
	AbortACP                        // atomic commitment: negative vote or commit-protocol timeout
	AbortInjected                   // explicitly injected by the failure injector
	AbortClient                     // client/session cancelled the transaction
	// AbortInDoubt is NOT a clean abort: the commit protocol could not
	// resolve the outcome within the call (3PC's pre-commit quorum was
	// unreachable) and quorum termination will decide it later — possibly
	// as a COMMIT. Callers must not blindly resubmit the work (the
	// original transaction may still take effect) and must not count it
	// as a protocol abort.
	AbortInDoubt
)

// String names the cause for reports.
func (c AbortCause) String() string {
	switch c {
	case AbortNone:
		return "none"
	case AbortCC:
		return "ccp"
	case AbortRCP:
		return "rcp"
	case AbortACP:
		return "acp"
	case AbortInjected:
		return "injected"
	case AbortClient:
		return "client"
	case AbortInDoubt:
		return "indoubt"
	default:
		return "unknown"
	}
}

// AbortError is the error returned through the transaction-processing stack
// when a protocol aborts a transaction. Cause records which protocol layer
// initiated the abort.
type AbortError struct {
	Cause  AbortCause
	Reason string
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("abort(%s): %s", e.Cause, e.Reason)
}

// Abortf builds an AbortError with a formatted reason.
func Abortf(cause AbortCause, format string, args ...any) *AbortError {
	return &AbortError{Cause: cause, Reason: fmt.Sprintf(format, args...)}
}

// CauseOf extracts the abort cause from an error chain, or AbortNone if err
// is nil, or AbortClient for non-abort errors (treated as client/session
// failures).
func CauseOf(err error) AbortCause {
	if err == nil {
		return AbortNone
	}
	if ae, ok := err.(*AbortError); ok {
		return ae.Cause
	}
	return AbortClient
}

// Outcome summarizes a finished transaction for the progress monitor and the
// workload generator.
type Outcome struct {
	Tx        TxID
	Committed bool
	Cause     AbortCause
	// LatencyNS is the wall-clock response time in nanoseconds from
	// admission at the home site to final decision.
	LatencyNS int64
	// Reads maps each item read to the value returned (committed reads only).
	Reads map[ItemID]int64
	// HomeSite is the site that coordinated the transaction.
	HomeSite SiteID
}

// WriteRecord is one installed write carried through pre-write, prepare and
// commit: the item, the value, and the version the write installs.
//
// Delta marks a commutative blind-add record: Value is then a delta merged
// into the copy's current value (the store applies value += Value and bumps
// the version by one) instead of an absolute overwrite. Delta application is
// NOT idempotent, so every path that installs records — the decision
// pipeline, WAL redo, checkpoint recovery — must apply each record exactly
// once; Rainbow's participant decision table and checkpoint horizon
// exactness already guarantee that.
type WriteRecord struct {
	Item    ItemID
	Value   int64
	Version Version
	Delta   bool
}
