// Package shard holds the hashing and sizing helpers shared by the
// sharded data-plane structures (the storage shard array and the lock-table
// stripes), so the two always agree on item placement math.
package shard

import (
	"runtime"

	"repro/internal/model"
)

// Hash is FNV-1a over the item id, the shard-selection hash.
func Hash(item model.ItemID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return h
}

// Normalize clamps n to [1, max] and rounds it up to a power of two (the
// shard mask requires one). Non-positive n derives from GOMAXPROCS.
func Normalize(n, max int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > max {
		n = max
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
