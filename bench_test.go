// Package main_test is Rainbow's benchmark harness: one benchmark per
// experiment in EXPERIMENTS.md (E1–E9), each regenerating a paper artifact
// — the Figure-5 output panel, the Section-3 statistics, the quorum
// message-traffic study, the protocol matrix of Figure 4, the replication /
// availability panel of Figure A-1, and the network-simulator sweeps.
//
// Run all experiments once:
//
//	go test -bench=. -benchtime=1x -benchmem
//
// Each benchmark prints its table (go test -v shows it interleaved) and
// reports the headline numbers as bench metrics so `benchstat` can compare
// runs.
package main

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/acp"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/quorum"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/simnet"
	"repro/internal/site"
	"repro/internal/storage"
	"repro/internal/tcpnet"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/wlg"
)

// benchTimeouts keeps protocol waits short so contention resolves quickly
// under benchmark load.
var benchTimeouts = schema.Timeouts{
	Op: 500 * time.Millisecond, Vote: 500 * time.Millisecond,
	Ack: 300 * time.Millisecond, Lock: 150 * time.Millisecond,
	OrphanResolve: 50 * time.Millisecond,
}

// benchNet is the default simulated LAN: 200µs base, 100µs jitter.
var benchNet = simnet.Config{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond}

func siteIDs(n int) []model.SiteID {
	out := make([]model.SiteID, n)
	for i := range out {
		out[i] = model.SiteID(fmt.Sprintf("S%d", i+1))
	}
	return out
}

func nItems(n int) map[model.ItemID]int64 {
	items := make(map[model.ItemID]int64, n)
	for i := 0; i < n; i++ {
		items[model.ItemID(fmt.Sprintf("i%02d", i))] = 100
	}
	return items
}

func newBenchInstance(b *testing.B, sites int, items int, protocols schema.Protocols, net simnet.Config) *core.Instance {
	b.Helper()
	inst, err := core.New(core.Options{
		Sites:     siteIDs(sites),
		Items:     nItems(items),
		Protocols: protocols,
		Timeouts:  benchTimeouts,
		Net:       net,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(inst.Close)
	return inst
}

// BenchmarkE1_TxProcessingOutput regenerates Figure 5: the full §3
// statistics panel for the default QC+2PL+2PC configuration.
func BenchmarkE1_TxProcessingOutput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst := newBenchInstance(b, 3, 8, schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"}, benchNet)
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 200, MPL: 4, OpsPerTx: 4, ReadFraction: 0.75, Retries: 3,
		})
		rep := inst.Report()
		tot := rep.Totals()
		if i == 0 {
			b.Logf("\n%s", rep.Render())
		}
		b.ReportMetric(res.CommitRate(), "commit-rate")
		b.ReportMetric(res.Throughput(), "tx/s")
		b.ReportMetric(rep.MessagesPerCommit(), "msg/commit")
		b.ReportMetric(float64(tot.Orphans), "orphans")
		b.ReportMetric(rep.LoadImbalance(), "load-cv")
		b.ReportMetric(float64(tot.Latency.Mean().Microseconds()), "mean-µs")
		if err := inst.CheckSerializable(core.CommittedSet(res.Outcomes)); err != nil {
			b.Fatalf("serializability: %v", err)
		}
		inst.Close()
	}
}

// BenchmarkE2_QuorumMessageTraffic regenerates the quorum-consensus
// message-traffic study (§3, ref [3]): msg/commit vs replication degree and
// vs read fraction, ROWA vs QC.
func BenchmarkE2_QuorumMessageTraffic(b *testing.B) {
	run := func(n int, rcpName string, readFraction float64) float64 {
		inst := newBenchInstance(b, n, 8, schema.Protocols{RCP: rcpName, CCP: "2pl", ACP: "2pc"}, benchNet)
		inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 120, MPL: 2, OpsPerTx: 4, ReadFraction: readFraction, Retries: 3,
		})
		m := inst.Report().MessagesPerCommit()
		inst.Close()
		return m
	}
	for i := 0; i < b.N; i++ {
		b.Log("copies  rowa-msg/tx  qc-msg/tx   (75% reads)")
		for _, n := range []int{1, 3, 5, 7} {
			rowa := run(n, "rowa", 0.75)
			qc := run(n, "qc", 0.75)
			if i == 0 {
				b.Logf("%6d %12.1f %10.1f", n, rowa, qc)
			}
			if n == 5 {
				b.ReportMetric(rowa, "rowa-n5-msg/tx")
				b.ReportMetric(qc, "qc-n5-msg/tx")
			}
		}
		b.Log("read%   rowa-msg/tx  qc-msg/tx   (5 copies)")
		for _, rf := range []float64{0.1, 0.5, 0.9} {
			rowa := run(5, "rowa", rf)
			qc := run(5, "qc", rf)
			if i == 0 {
				b.Logf("%5.0f%% %12.1f %10.1f", rf*100, rowa, qc)
			}
		}
	}
}

// BenchmarkE3_AbortBreakdown regenerates the per-cause abort statistics:
// CCP aborts vs MPL under 2PL and TSO, and RCP aborts under failure.
func BenchmarkE3_AbortBreakdown(b *testing.B) {
	run := func(ccp string, mpl int) wlg.Result {
		inst := newBenchInstance(b, 3, 4, schema.Protocols{RCP: "qc", CCP: ccp, ACP: "2pc"}, benchNet)
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 100, MPL: mpl, OpsPerTx: 4, ReadFraction: 0.5, Retries: 0, HotItems: 4,
		})
		inst.Close()
		return res
	}
	for i := 0; i < b.N; i++ {
		b.Log("mpl    2pl-abort%   tso-abort%  (no retries, 4-item hotspot)")
		for _, mpl := range []int{1, 4, 8, 16} {
			r2 := run("2pl", mpl)
			rt := run("tso", mpl)
			a2 := float64(r2.Aborted) / float64(r2.Submitted)
			at := float64(rt.Aborted) / float64(rt.Submitted)
			if i == 0 {
				b.Logf("%3d %11.2f %12.2f  (2pl causes %v, tso causes %v)", mpl, a2, at, r2.ByCause, rt.ByCause)
			}
			if mpl == 8 {
				b.ReportMetric(a2, "2pl-abort-rate-mpl8")
				b.ReportMetric(at, "tso-abort-rate-mpl8")
			}
		}
		// RCP aborts: ROWA writes with one site crashed.
		inst := newBenchInstance(b, 3, 4, schema.Protocols{RCP: "rowa", CCP: "2pl", ACP: "2pc"}, benchNet)
		inst.Injector.Crash("S3")
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 40, MPL: 2, OpsPerTx: 2, ReadFraction: 0.0001, Retries: 0,
			Sites: siteIDs(2),
		})
		if i == 0 {
			b.Logf("rowa writes with 1/3 sites down: aborted %d/%d, causes %v", res.Aborted, res.Submitted, res.ByCause)
		}
		b.ReportMetric(float64(res.ByCause[model.AbortRCP]), "rcp-aborts-under-failure")
		inst.Close()
	}
}

// BenchmarkE4_ThroughputResponse regenerates the throughput / response-time
// measures: closed-loop MPL sweep for the three CCPs.
func BenchmarkE4_ThroughputResponse(b *testing.B) {
	run := func(ccp string, mpl int) wlg.Result {
		inst := newBenchInstance(b, 3, 12, schema.Protocols{RCP: "qc", CCP: ccp, ACP: "2pc"}, benchNet)
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 150, MPL: mpl, OpsPerTx: 3, ReadFraction: 0.8, Retries: 3,
		})
		inst.Close()
		return res
	}
	for i := 0; i < b.N; i++ {
		for _, ccp := range []string{"2pl", "tso", "mvtso"} {
			b.Logf("%s:  mpl   tx/s   mean-latency   commit-rate", ccp)
			for _, mpl := range []int{1, 2, 4, 8, 16} {
				res := run(ccp, mpl)
				if i == 0 {
					b.Logf("    %4d %7.1f %12v %12.2f", mpl, res.Throughput(),
						res.MeanLatency().Round(time.Microsecond), res.CommitRate())
				}
				if mpl == 8 {
					b.ReportMetric(res.Throughput(), ccp+"-tx/s-mpl8")
				}
			}
		}
	}
}

// BenchmarkE5_FailureRecovery regenerates the fault-tolerance experiment:
// orphan transactions under coordinator failure, 2PC (blocking) vs 3PC
// (coordinator-less termination), plus QC vs ROWA availability.
func BenchmarkE5_FailureRecovery(b *testing.B) {
	// crashOnce fires a concurrent write burst at coordinator S1 and crashes
	// it mid-flight. Whether the crash lands inside the narrow
	// voted-but-undecided window is probabilistic, so crashRun retries until
	// orphans are actually stranded.
	attempt := 0
	crashOnce := func(acpName string) (orphans int, drainedWithoutCoord bool, drainAfterRecovery time.Duration) {
		inst := newBenchInstance(b, 3, 4, schema.Protocols{RCP: "qc", CCP: "2pl", ACP: acpName}, benchNet)
		defer inst.Close()
		ctx := context.Background()
		done := make(chan struct{})
		go func() {
			defer close(done)
			var wg sync.WaitGroup
			for i := 0; i < 12; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					item := model.ItemID(fmt.Sprintf("i%02d", i%4))
					inst.Submit(ctx, "S1", []model.Op{model.Write(item, int64(i))})
				}(i)
			}
			wg.Wait()
		}()
		time.Sleep(time.Duration(2+attempt%5) * time.Millisecond)
		inst.Injector.Crash("S1")
		<-done
		time.Sleep(200 * time.Millisecond)
		orphans = inst.Orphans()
		drainedWithoutCoord = inst.WaitOrphansDrained(1500 * time.Millisecond)
		start := time.Now()
		if err := inst.Injector.Recover("S1"); err != nil {
			b.Fatal(err)
		}
		if !inst.WaitOrphansDrained(10 * time.Second) {
			b.Fatalf("%s: orphans survived coordinator recovery", acpName)
		}
		return orphans, drainedWithoutCoord, time.Since(start)
	}
	crashRun := func(acpName string) (orphans int, drainedWithoutCoord bool, drainAfterRecovery time.Duration) {
		for attempt = 0; attempt < 8; attempt++ {
			orphans, drainedWithoutCoord, drainAfterRecovery = crashOnce(acpName)
			if orphans > 0 {
				return orphans, drainedWithoutCoord, drainAfterRecovery
			}
		}
		return orphans, drainedWithoutCoord, drainAfterRecovery
	}
	for i := 0; i < b.N; i++ {
		for _, acpName := range []string{"2pc", "3pc"} {
			orphans, drained, drainLat := crashRun(acpName)
			if i == 0 {
				b.Logf("%s: orphans-during-outage=%d drained-without-coordinator=%v post-recovery-drain=%v",
					acpName, orphans, drained, drainLat.Round(time.Millisecond))
			}
			tag := acpName + "-orphans"
			b.ReportMetric(float64(orphans), tag)
			if drained {
				b.ReportMetric(1, acpName+"-coordless-drain")
			} else {
				b.ReportMetric(0, acpName+"-coordless-drain")
			}
		}
		// Availability: QC vs ROWA with one of three sites down, 50% writes.
		for _, rcpName := range []string{"qc", "rowa"} {
			inst := newBenchInstance(b, 3, 4, schema.Protocols{RCP: rcpName, CCP: "2pl", ACP: "2pc"}, benchNet)
			inst.Injector.Crash("S3")
			res := inst.RunWorkload(context.Background(), wlg.Profile{
				Transactions: 60, MPL: 3, OpsPerTx: 2, ReadFraction: 0.5, Retries: 2,
				Sites: siteIDs(2),
			})
			if i == 0 {
				b.Logf("%s commit rate with 1/3 sites down: %.2f (causes %v)", rcpName, res.CommitRate(), res.ByCause)
			}
			b.ReportMetric(res.CommitRate(), rcpName+"-commit-rate-1down")
			inst.Close()
		}
	}
}

// BenchmarkE6_ProtocolMatrix regenerates Figure 4's promise: every
// RCP × CCP × ACP combination runs the same workload.
func BenchmarkE6_ProtocolMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.Log("protocols              commit%   tx/s  msg/commit")
		for _, rcpName := range []string{"rowa", "qc"} {
			for _, ccpName := range []string{"2pl", "tso", "mvtso"} {
				for _, acpName := range []string{"2pc", "3pc"} {
					inst := newBenchInstance(b, 3, 8,
						schema.Protocols{RCP: rcpName, CCP: ccpName, ACP: acpName}, benchNet)
					res := inst.RunWorkload(context.Background(), wlg.Profile{
						Transactions: 120, MPL: 4, OpsPerTx: 4, ReadFraction: 0.75, Retries: 3,
					})
					rep := inst.Report()
					name := rcpName + "/" + ccpName + "/" + acpName
					if i == 0 {
						b.Logf("%-22s %6.1f%% %6.1f %8.1f", name,
							100*res.CommitRate(), res.Throughput(), rep.MessagesPerCommit())
					}
					if res.CommitRate() < 0.5 {
						b.Errorf("%s: commit rate %.2f — matrix cell broken", name, res.CommitRate())
					}
					if err := inst.CheckSerializable(core.CommittedSet(res.Outcomes)); err != nil {
						b.Errorf("%s: %v", name, err)
					}
					inst.Close()
				}
			}
		}
	}
}

// BenchmarkE7_ReplicationAvailability regenerates Figure A-1: the vote /
// quorum configuration table with closed-form availability, validated by a
// measured run with one site down.
func BenchmarkE7_ReplicationAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.Log("n    p      qc-read  qc-write  rowa-read  rowa-write")
		for _, n := range []int{3, 5, 7} {
			sites := siteIDs(n)
			qc := quorum.Majority(sites)
			rowa := quorum.ReadOneWriteAll(sites)
			for _, p := range []float64{0.5, 0.9, 0.99} {
				if i == 0 {
					b.Logf("%d %6.2f %8.3f %9.3f %10.3f %11.3f", n, p,
						qc.ReadAvailability(p), qc.WriteAvailability(p),
						rowa.ReadAvailability(p), rowa.WriteAvailability(p))
				}
				if n == 5 && p == 0.9 {
					b.ReportMetric(qc.WriteAvailability(p), "qc-write-avail-n5-p90")
					b.ReportMetric(rowa.WriteAvailability(p), "rowa-write-avail-n5-p90")
				}
			}
		}
		// Measured validation: commit rates with one of five sites down.
		for _, rcpName := range []string{"qc", "rowa"} {
			inst := newBenchInstance(b, 5, 4, schema.Protocols{RCP: rcpName, CCP: "2pl", ACP: "2pc"}, benchNet)
			inst.Injector.Crash("S5")
			res := inst.RunWorkload(context.Background(), wlg.Profile{
				Transactions: 50, MPL: 2, OpsPerTx: 2, ReadFraction: 0.5, Retries: 2,
				Sites: siteIDs(4),
			})
			if i == 0 {
				b.Logf("measured %s commit rate, 1/5 down: %.2f", rcpName, res.CommitRate())
			}
			b.ReportMetric(res.CommitRate(), rcpName+"-measured-1of5down")
			inst.Close()
		}
	}
}

// BenchmarkE8_ManualWorkload regenerates Figure A-2: manual transaction
// composition and submission, measuring single-transaction latency and
// message cost with and without local copies.
func BenchmarkE8_ManualWorkload(b *testing.B) {
	// Custom catalog: item "loc" has a copy at S1, item "rem" does not.
	cat := schema.NewCatalog()
	for _, id := range siteIDs(3) {
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	cat.PlaceCopies("loc", 10, "S1", "S2", "S3")
	cat.PlaceCopies("rem", 20, "S2", "S3")
	cat.Timeouts = benchTimeouts
	inst, err := core.New(core.Options{Catalog: cat, Net: benchNet})
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Close()
	ctx := context.Background()

	specsLocal := []wlg.Manual{{Kind: "r", Item: "loc"}, {Kind: "w", Item: "loc", Value: 1}}
	specsRemote := []wlg.Manual{{Kind: "r", Item: "rem"}, {Kind: "w", Item: "rem", Value: 1}}

	measure := func(specs []wlg.Manual) (time.Duration, float64) {
		inst.ResetStats()
		const reps = 20
		var lat time.Duration
		for j := 0; j < reps; j++ {
			out, err := inst.SubmitManual(ctx, "S1", specs)
			if err != nil || !out.Committed {
				b.Fatalf("manual tx failed: %+v %v", out, err)
			}
			lat += time.Duration(out.LatencyNS)
		}
		msgs := float64(inst.Net.Stats().Delivered) / reps
		return lat / reps, msgs
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		latLocal, msgsLocal := measure(specsLocal)
		latRemote, msgsRemote := measure(specsRemote)
		if i == 0 {
			b.Logf("manual tx with local copy:   %v, %.1f msgs", latLocal.Round(time.Microsecond), msgsLocal)
			b.Logf("manual tx remote-only item:  %v, %.1f msgs", latRemote.Round(time.Microsecond), msgsRemote)
		}
		b.ReportMetric(float64(latLocal.Microseconds()), "local-µs/tx")
		b.ReportMetric(float64(latRemote.Microseconds()), "remote-µs/tx")
		b.ReportMetric(msgsLocal, "local-msgs/tx")
		b.ReportMetric(msgsRemote, "remote-msgs/tx")
		if msgsRemote <= msgsLocal {
			b.Errorf("remote-only tx (%f msgs) should cost more than local (%f)", msgsRemote, msgsLocal)
		}
	}
}

// BenchmarkE9_NetworkSimulation regenerates the network-simulator
// experiment: commit rate and response time vs injected latency and loss.
func BenchmarkE9_NetworkSimulation(b *testing.B) {
	run := func(net simnet.Config) wlg.Result {
		inst := newBenchInstance(b, 3, 8, schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"}, net)
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 60, MPL: 3, OpsPerTx: 3, ReadFraction: 0.75, Retries: 2,
		})
		inst.Close()
		return res
	}
	for i := 0; i < b.N; i++ {
		b.Log("latency    commit%   mean-latency")
		for _, lat := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
			res := run(simnet.Config{BaseLatency: lat})
			if i == 0 {
				b.Logf("%8v %8.1f%% %12v", lat, 100*res.CommitRate(), res.MeanLatency().Round(time.Microsecond))
			}
			if lat == 5*time.Millisecond {
				b.ReportMetric(float64(res.MeanLatency().Microseconds()), "mean-µs-at-5ms")
			}
		}
		b.Log("droprate   commit%   (no retransmission: loss maps to aborts)")
		for _, drop := range []float64{0, 0.01, 0.05, 0.20} {
			res := run(simnet.Config{DropRate: drop})
			if i == 0 {
				b.Logf("%7.0f%% %8.1f%%  causes %v", drop*100, 100*res.CommitRate(), res.ByCause)
			}
			if drop == 0.20 {
				b.ReportMetric(res.CommitRate(), "commit-rate-20pct-drop")
			}
		}
	}
}

// ---- Ablation benches (design choices called out in DESIGN.md) ----

// BenchmarkA1_DeadlockHandlingAblation compares 2PL's waits-for-graph
// deadlock detection against the timeout-only fallback on an
// upgrade-deadlock-prone hotspot: detection aborts victims immediately,
// timeouts stall every deadlocked transaction for the full lock timeout.
func BenchmarkA1_DeadlockHandlingAblation(b *testing.B) {
	run := func(noDetect bool) wlg.Result {
		inst := newBenchInstance(b, 3, 4, schema.Protocols{
			RCP: "qc", CCP: "2pl", ACP: "2pc", NoDeadlockDetection: noDetect,
		}, benchNet)
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 80, MPL: 6, OpsPerTx: 3, ReadFraction: 0.5, Retries: 4, HotItems: 2,
		})
		inst.Close()
		return res
	}
	for i := 0; i < b.N; i++ {
		det := run(false)
		timeoutOnly := run(true)
		if i == 0 {
			b.Logf("detection:    %6.1f tx/s, mean %v, commit %.2f",
				det.Throughput(), det.MeanLatency().Round(time.Microsecond), det.CommitRate())
			b.Logf("timeout-only: %6.1f tx/s, mean %v, commit %.2f",
				timeoutOnly.Throughput(), timeoutOnly.MeanLatency().Round(time.Microsecond), timeoutOnly.CommitRate())
		}
		b.ReportMetric(det.Throughput(), "detect-tx/s")
		b.ReportMetric(timeoutOnly.Throughput(), "timeout-only-tx/s")
		b.ReportMetric(float64(det.MeanLatency().Microseconds()), "detect-mean-µs")
		b.ReportMetric(float64(timeoutOnly.MeanLatency().Microseconds()), "timeout-only-mean-µs")
	}
}

// BenchmarkA2_RetryPolicyAblation sweeps the workload generator's restart
// budget on a contended workload: goodput (committed work) rises with
// retries while raw submission cost grows — the knob every classroom
// assignment about abort handling turns.
func BenchmarkA2_RetryPolicyAblation(b *testing.B) {
	run := func(retries int) wlg.Result {
		inst := newBenchInstance(b, 3, 4, schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"}, benchNet)
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 80, MPL: 6, OpsPerTx: 3, ReadFraction: 0.5, Retries: retries, HotItems: 2,
		})
		inst.Close()
		return res
	}
	for i := 0; i < b.N; i++ {
		b.Log("retries   commit%   restarts")
		for _, r := range []int{0, 1, 3, 8} {
			res := run(r)
			if i == 0 {
				b.Logf("%7d %8.1f%% %9d", r, 100*res.CommitRate(), res.Restarts)
			}
			if r == 0 {
				b.ReportMetric(res.CommitRate(), "commit-rate-no-retries")
			}
			if r == 8 {
				b.ReportMetric(res.CommitRate(), "commit-rate-8-retries")
			}
		}
	}
}

// BenchmarkA3_ReadOnlyOptAblation measures the presumed-abort read-only
// participant optimization: commit-protocol message savings on a read-heavy
// workload (read-only quorum members skip phase 2 entirely).
func BenchmarkA3_ReadOnlyOptAblation(b *testing.B) {
	run := func(disable bool) float64 {
		inst := newBenchInstance(b, 3, 8, schema.Protocols{
			RCP: "qc", CCP: "2pl", ACP: "2pc", NoReadOnlyOpt: disable,
		}, benchNet)
		inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 120, MPL: 2, OpsPerTx: 4, ReadFraction: 0.9, Retries: 3,
		})
		m := inst.Report().MessagesPerCommit()
		inst.Close()
		return m
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if i == 0 {
			b.Logf("msg/commit with read-only opt: %.1f, without: %.1f", with, without)
		}
		b.ReportMetric(with, "msg/commit-with-ro-opt")
		b.ReportMetric(without, "msg/commit-without-ro-opt")
		if with >= without {
			b.Errorf("read-only optimization did not reduce messages: %.1f vs %.1f", with, without)
		}
	}
}

// ---- Data-plane microbenchmarks (sharding / group-commit tentpole) ----
//
// Each benchmark runs the same parallel workload against a shard count of 1
// (the pre-sharding global-mutex design) and the GOMAXPROCS-derived default,
// so benchstat shows the contention win directly.

// benchShardCounts returns the ablation points: the single-shard baseline
// and a fixed sharded configuration (plus the host default when larger),
// so the comparison exists even on single-core CI runners. The extra point
// is capped at lock.MaxShards so the label matches the stripe count the
// lock manager actually normalizes to.
func benchShardCounts() []int {
	out := []int{1, 8}
	if def := storage.DefaultShards(); def > 8 {
		if def > lock.MaxShards {
			def = lock.MaxShards
		}
		out = append(out, def)
	}
	return out
}

// forceParallelism raises GOMAXPROCS to at least n for the benchmark (a
// no-op on multicore hardware): on small CI runners the OS then timeslices
// several threads over the cores, so critical sections really do get
// preempted and lock contention — the thing these benchmarks measure —
// exists at all.
func forceParallelism(b *testing.B, n int) {
	old := runtime.GOMAXPROCS(0)
	if old >= n {
		return
	}
	runtime.GOMAXPROCS(n)
	b.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// BenchmarkStorageContention measures parallel copy reads and version-
// guarded installs across the store's shards.
func BenchmarkStorageContention(b *testing.B) {
	const nItems = 1024
	items := make(map[model.ItemID]int64, nItems)
	ids := make([]model.ItemID, nItems)
	for i := range ids {
		ids[i] = model.ItemID(fmt.Sprintf("i%04d", i))
		items[ids[i]] = 0
	}
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := storage.NewSharded(shards)
			st.Init(items)
			var ctr atomic.Uint64
			forceParallelism(b, 8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := ctr.Add(1)
					item := ids[n%nItems]
					if n%4 == 0 {
						st.Apply([]model.WriteRecord{{Item: item, Value: int64(n), Version: model.Version(n)}})
					} else {
						st.Get(item)
					}
				}
			})
		})
	}
}

// BenchmarkLockContention measures parallel two-item transactions (S or X,
// acquired in global order, then ReleaseAll) across the lock-table stripes.
func BenchmarkLockContention(b *testing.B) {
	const nItems = 1024
	ids := make([]model.ItemID, nItems)
	for i := range ids {
		ids[i] = model.ItemID(fmt.Sprintf("i%04d", i))
	}
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := lock.New(lock.Options{Timeout: 5 * time.Second, Shards: shards})
			var ctr atomic.Uint64
			ctx := context.Background()
			forceParallelism(b, 8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := ctr.Add(1)
					id := model.TxID{Site: "B", Seq: n}
					i, j := n%nItems, (n*31+17)%nItems
					if i > j {
						i, j = j, i // global lock order
					}
					mode := lock.Shared
					if n%4 == 0 {
						mode = lock.Exclusive
					}
					if err := m.Acquire(ctx, id, ids[i], mode); err == nil && j != i {
						m.Acquire(ctx, id, ids[j], mode)
					}
					m.ReleaseAll(id)
				}
			})
		})
	}
}

// BenchmarkWALGroupCommit measures parallel Prepared-record forces against
// a synced file log: "direct" is the pre-group-commit design (one
// write/flush/fsync per append under a mutex), "group" parks concurrent
// appenders on the committer and pays one force per batch.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts wal.FileOptions
	}{
		{"direct", wal.FileOptions{Sync: true, NoGroupCommit: true}},
		{"group", wal.FileOptions{Sync: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := wal.OpenFileWith(filepath.Join(b.TempDir(), "bench.wal"), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Uint64
			forceParallelism(b, 8)
			b.SetParallelism(4) // many concurrent committers per core
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := ctr.Add(1)
					err := l.Append(wal.Record{
						Type:   wal.RecPrepared,
						Tx:     model.TxID{Site: "B", Seq: n},
						Writes: []model.WriteRecord{{Item: "x", Value: int64(n), Version: model.Version(n)}},
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			flushes, records := l.BatchStats()
			if flushes > 0 {
				b.ReportMetric(float64(records)/float64(flushes), "recs/flush")
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---- Durability microbenchmarks (checkpoint / segmented-WAL tentpole) ----

// BenchmarkWALAppend measures single-appender record encoding + write cost
// on the segmented log, binary codec vs the legacy-compatible JSON codec
// (no fsync, no group commit: the codec and framing are the variables).
func BenchmarkWALAppend(b *testing.B) {
	for _, codecName := range []string{"binary", "json"} {
		b.Run(codecName, func(b *testing.B) {
			codec, err := wal.CodecByName(codecName)
			if err != nil {
				b.Fatal(err)
			}
			l, err := wal.OpenSegmented(b.TempDir(), wal.SegmentOptions{
				Codec: codec, NoGroupCommit: true, SegmentBytes: 64 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			rec := wal.Record{
				Type:         wal.RecPrepared,
				Tx:           model.TxID{Site: "S1", Seq: 1},
				TS:           model.Timestamp{Time: 42, Site: "S1"},
				Coordinator:  "S1",
				Participants: []model.SiteID{"S1", "S2", "S3"},
				Writes: []model.WriteRecord{
					{Item: "item-a", Value: 12345, Version: 7},
					{Item: "item-b", Value: -9876, Version: 8},
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Tx.Seq = uint64(i + 1)
				if err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(l.AppendedBytes())/float64(b.N), "B/rec")
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ckptBenchStore builds an n-item store over the given shard count and
// classifies the item ids per shard, so benchmarks can dirty an exact
// number of shards.
func ckptBenchStore(b *testing.B, nItems, shards int) (*storage.Store, [][]model.ItemID) {
	b.Helper()
	items := make(map[model.ItemID]int64, nItems)
	perShard := make([][]model.ItemID, shards)
	for i := 0; i < nItems; i++ {
		id := model.ItemID(fmt.Sprintf("i%07d", i))
		items[id] = 0
		idx := int(shard.Hash(id) & uint32(shards-1))
		perShard[idx] = append(perShard[idx], id)
	}
	st := storage.NewSharded(shards)
	st.Init(items)
	for idx, ids := range perShard {
		if len(ids) == 0 {
			b.Fatalf("shard %d received no items; enlarge the item pool", idx)
		}
	}
	return st, perShard
}

// ckptAdvance commits one write per target shard through the log and store,
// so the next checkpoint has exactly len(targets) dirty shards and a fresh
// horizon to pin.
func ckptAdvance(b *testing.B, st *storage.Store, l wal.Log, perShard [][]model.ItemID, targets []int, version uint64) {
	b.Helper()
	for _, idx := range targets {
		id := perShard[idx][0]
		w := []model.WriteRecord{{Item: id, Value: int64(version), Version: model.Version(version)}}
		tx := model.TxID{Site: "B", Seq: version*uint64(len(perShard)) + uint64(idx)}
		if err := l.Append(wal.Record{Type: wal.RecPrepared, Tx: tx, Coordinator: "B", Writes: w}); err != nil {
			b.Fatal(err)
		}
		if err := l.Append(wal.Record{Type: wal.RecDecision, Tx: tx, Commit: true}); err != nil {
			b.Fatal(err)
		}
		if err := st.Apply(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures one checkpoint's cost as a function of how
// many shards are dirty: a full snapshot copies the whole store every time
// (cost tracks store size), a delta copies only the dirty shards (cost
// tracks the write rate). The snap-items metric shows the captured volume
// directly.
func BenchmarkCheckpoint(b *testing.B) {
	const shards = 64
	for _, nItems := range []int{65536, 262144} {
		for _, mode := range []struct {
			name  string
			dirty int // shards written per checkpoint interval
			pol   checkpoint.Policy
		}{
			{"full", 4, checkpoint.Policy{Retain: 2}},
			{"delta-dirty=4", 4, checkpoint.Policy{Retain: 2, DeltaMax: 1 << 30}},
			{"delta-dirty=32", 32, checkpoint.Policy{Retain: 2, DeltaMax: 1 << 30}},
		} {
			b.Run(fmt.Sprintf("items=%d/%s", nItems, mode.name), func(b *testing.B) {
				st, perShard := ckptBenchStore(b, nItems, shards)
				l := wal.NewMemory()
				mgr := checkpoint.NewManager(st, l, checkpoint.NewMemStore(), nil, mode.pol)
				targets := make([]int, mode.dirty)
				for i := range targets {
					targets[i] = (i * shards) / mode.dirty
				}
				// Untimed warmup checkpoint: seeds the chain so delta modes
				// measure deltas, not the initial full snapshot.
				ckptAdvance(b, st, l, perShard, targets, 1)
				if err := mgr.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ckptAdvance(b, st, l, perShard, targets, uint64(i+2))
					if err := mgr.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				cs := mgr.Stats()
				b.ReportMetric(float64(cs.LastItems), "snap-items")
				b.ReportMetric(float64(cs.LastDirtyShards), "dirty-shards")
				b.ReportMetric(float64(cs.LastPause), "pause-ns")
			})
		}
	}
}

// BenchmarkCheckpointPause measures the decision-pipeline stall a
// checkpoint causes at a large (1M-item) store: the wall time the snapshot
// gate is held. "nocow" is the pre-COW design (the whole capture is copied
// under the gate); "cow" seals the dirty shards under the gate and copies
// after releasing it, so the pause is O(shards) instead of O(data) — the
// pause-ns metric is the acceptance number (≥10x lower under cow).
func BenchmarkCheckpointPause(b *testing.B) {
	const nItems = 1_000_000
	const shards = 256
	for _, mode := range []struct {
		name string
		pol  checkpoint.Policy
	}{
		{"nocow", checkpoint.Policy{Retain: 2, NoCOW: true}},
		{"cow", checkpoint.Policy{Retain: 2, DeltaMax: 1 << 30}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st, perShard := ckptBenchStore(b, nItems, shards)
			l := wal.NewMemory()
			mgr := checkpoint.NewManager(st, l, checkpoint.NewMemStore(), nil, mode.pol)
			targets := []int{0, 64, 128, 192} // modest write rate between checkpoints
			ckptAdvance(b, st, l, perShard, targets, 1)
			if err := mgr.Checkpoint(); err != nil { // warmup: chain seed
				b.Fatal(err)
			}
			var maxPause time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ckptAdvance(b, st, l, perShard, targets, uint64(i+2))
				if err := mgr.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				if p := mgr.Stats().LastPause; p > maxPause {
					maxPause = p
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(maxPause), "pause-ns")
			b.ReportMetric(float64(mgr.Stats().LastItems), "snap-items")
		})
	}
}

// BenchmarkRecovery measures a site store's crash-recovery path: full
// WAL-history replay (the pre-checkpoint design) vs snapshot-plus-tail
// recovery after checkpoints compacted the log. The replayed-recs metric
// shows the bounded-recovery win directly.
func BenchmarkRecovery(b *testing.B) {
	const txns = 2000
	items := map[model.ItemID]int64{"x": 0}
	populate := func(b *testing.B, dir string, checkpoints bool) {
		b.Helper()
		l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 8 << 10, NoGroupCommit: true})
		if err != nil {
			b.Fatal(err)
		}
		st := storage.NewSharded(0)
		st.Init(items)
		mgr := checkpoint.NewManager(st, l, checkpoint.NewDirStore(dir), nil, checkpoint.Policy{})
		ckptAt := map[int]bool{txns / 2: true, txns: true}
		for i := 1; i <= txns; i++ {
			tx := model.TxID{Site: "S1", Seq: uint64(i)}
			w := []model.WriteRecord{{Item: "x", Value: int64(i), Version: model.Version(i)}}
			if err := l.Append(wal.Record{Type: wal.RecPrepared, Tx: tx, Coordinator: "S1", Writes: w}); err != nil {
				b.Fatal(err)
			}
			if err := l.Append(wal.Record{Type: wal.RecDecision, Tx: tx, Commit: true}); err != nil {
				b.Fatal(err)
			}
			if err := st.Apply(w); err != nil {
				b.Fatal(err)
			}
			if checkpoints && ckptAt[i] {
				if err := mgr.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []struct {
		name        string
		checkpoints bool
	}{
		{"full-replay", false},
		{"from-checkpoint", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			populate(b, dir, mode.checkpoints)
			snaps := checkpoint.NewDirStore(dir)
			var replayed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, err := wal.OpenSegmented(dir, wal.SegmentOptions{})
				if err != nil {
					b.Fatal(err)
				}
				snap, err := checkpoint.Latest(snaps)
				if err != nil {
					b.Fatal(err)
				}
				recs, err := l.ReadAll()
				if err != nil {
					b.Fatal(err)
				}
				var snapItems map[model.ItemID]storage.Copy
				var horizon uint64
				if snap != nil {
					snapItems, horizon = snap.Items, snap.Horizon
				}
				st := storage.NewSharded(0)
				if _, err := st.RecoverRecords(items, snapItems, horizon, recs); err != nil {
					b.Fatal(err)
				}
				if c, _ := st.Get("x"); c.Value != txns {
					b.Fatalf("recovered x = %+v, want %d", c, txns)
				}
				replayed = len(recs)
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(replayed), "replayed-recs")
		})
	}
}

// BenchmarkReconfigure measures one live catalog reconfiguration of a
// loaded site: epoch bump, decision-pipeline quiesce, forced full snapshot
// at the current horizon, protocol-stack rebuild into a different shard
// count, store restore — no restart, no lost data. The cost is O(store):
// the forced snapshot plus the rebuild's restore dominate, which is why the
// item-count subcases scale near-linearly.
func BenchmarkReconfigure(b *testing.B) {
	for _, n := range []int{16384, 65536} {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			cat := schema.NewCatalog()
			cat.Sites["S1"] = schema.SiteInfo{ID: "S1"}
			for i := 0; i < n; i++ {
				cat.PlaceCopies(model.ItemID(fmt.Sprintf("i%06d", i)), int64(i), "S1")
			}
			cat.Timeouts = benchTimeouts
			net := simnet.New(benchNet)
			st, err := site.New(site.Config{ID: "S1", Net: net, Catalog: cat})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			// A little committed work so the forced snapshot covers a real
			// horizon, not just initial values.
			ctx := context.Background()
			for v := int64(1); v <= 32; v++ {
				if out := st.Execute(ctx, []model.Op{model.Write("i000000", v)}); !out.Committed {
					b.Fatalf("seed write: %+v", out)
				}
			}
			epoch := st.Epoch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := st.Catalog().Clone()
				epoch++
				next.Epoch = epoch
				next.Shards = 4 << (i % 2) // alternate 4 and 8
				if err := st.Reconfigure(next); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if out := st.Execute(ctx, []model.Op{model.Read("i000000")}); !out.Committed || out.Reads["i000000"] != 32 {
				b.Fatalf("post-bench read = %+v, want 32", out)
			}
			b.ReportMetric(float64(n), "items")
			b.ReportMetric(float64(st.Reconfigures()), "reconfigs")
		})
	}
}

// termBench wires three acp.Participants into both halves of the protocol
// over direct calls (no network), with a decision-drop switch that
// simulates the coordinator crashing right after the pre-commit round —
// the schedule quorum termination exists for.
type termBench struct {
	participants  map[model.SiteID]*acp.Participant
	sites         []model.SiteID
	dropDecisions atomic.Bool
	down          map[model.SiteID]*atomic.Bool
}

type termApplier struct{}

func (termApplier) Commit(model.TxID, []model.WriteRecord) error { return nil }
func (termApplier) Abort(model.TxID)                             {}

func newTermBench(n int) *termBench {
	tb := &termBench{
		participants: make(map[model.SiteID]*acp.Participant),
		down:         make(map[model.SiteID]*atomic.Bool),
	}
	for i := 0; i < n; i++ {
		id := model.SiteID(fmt.Sprintf("S%d", i+1))
		tb.sites = append(tb.sites, id)
		tb.participants[id] = acp.NewParticipant(id, wal.NewMemory(), termApplier{})
		tb.down[id] = &atomic.Bool{}
	}
	return tb
}

func (tb *termBench) reachable(site model.SiteID) error {
	if tb.down[site].Load() {
		return fmt.Errorf("site %s down", site)
	}
	return nil
}

func (tb *termBench) Prepare(_ context.Context, site model.SiteID, req wire.PrepareReq) (wire.VoteResp, error) {
	if err := tb.reachable(site); err != nil {
		return wire.VoteResp{}, err
	}
	return tb.participants[site].HandlePrepare(req), nil
}

func (tb *termBench) PreCommit(_ context.Context, site model.SiteID, tx model.TxID) error {
	if err := tb.reachable(site); err != nil {
		return err
	}
	return tb.participants[site].HandlePreCommit(tx)
}

func (tb *termBench) Decide(_ context.Context, site model.SiteID, tx model.TxID, commit bool) error {
	if tb.dropDecisions.Load() {
		return fmt.Errorf("decision dropped")
	}
	if err := tb.reachable(site); err != nil {
		return err
	}
	return tb.participants[site].HandleDecision(tx, commit)
}

func (tb *termBench) End(_ context.Context, site model.SiteID, tx model.TxID) error {
	if err := tb.reachable(site); err != nil {
		return err
	}
	tb.participants[site].Retire(tx)
	return nil
}

func (tb *termBench) QueryDecision(_ context.Context, site model.SiteID, tx model.TxID, _ bool) (bool, bool, error) {
	if err := tb.reachable(site); err != nil {
		return false, false, err
	}
	commit, known := tb.participants[site].Decision(tx)
	return known, commit, nil
}

func (tb *termBench) QueryTermination(_ context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot) (wire.TermQueryResp, error) {
	if err := tb.reachable(site); err != nil {
		return wire.TermQueryResp{}, err
	}
	return tb.participants[site].HandleTermQuery(tx, ballot), nil
}

func (tb *termBench) SendPreDecide(_ context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot, commit bool) (wire.TermPreDecideResp, error) {
	if err := tb.reachable(site); err != nil {
		return wire.TermPreDecideResp{}, err
	}
	return tb.participants[site].HandlePreDecide(tx, ballot, commit), nil
}

func (tb *termBench) SendDecision(_ context.Context, site model.SiteID, tx model.TxID, commit bool) error {
	if err := tb.reachable(site); err != nil {
		return err
	}
	return tb.participants[site].HandleDecision(tx, commit)
}

// BenchmarkThreePCTermination measures the quorum-terminated 3PC paths:
// the fault-free commit round (vote + durable pre-commit quorum + decision)
// and the one-crash path (coordinator lost after pre-commit; a surviving
// member runs the election / pre-decision / decision quorums to
// completion). Recorded in BENCH_baseline.json and gated by benchdiff.
func BenchmarkThreePCTermination(b *testing.B) {
	request := func(tb *termBench, seq uint64) acp.Request {
		return acp.Request{
			Tx:           model.TxID{Site: tb.sites[0], Seq: seq},
			TS:           model.Timestamp{Time: seq, Site: tb.sites[0]},
			Coordinator:  tb.sites[0],
			Participants: tb.sites,
			Voters:       tb.sites,
			WritesFor: func(model.SiteID) []model.WriteRecord {
				return []model.WriteRecord{{Item: "x", Value: int64(seq), Version: model.Version(seq)}}
			},
		}
	}
	opts := acp.Options{Vote: time.Second, Ack: time.Second}

	b.Run("fault-free", func(b *testing.B) {
		tb := newTermBench(3)
		log := wal.NewMemory()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			commit, err := (acp.ThreePC{}).Commit(context.Background(), tb, log, opts, request(tb, uint64(i+1)), nil)
			if err != nil || !commit {
				b.Fatalf("commit = %v, %v", commit, err)
			}
		}
	})

	b.Run("one-crash", func(b *testing.B) {
		tb := newTermBench(3)
		log := wal.NewMemory()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := request(tb, uint64(i+1))
			// The decision broadcast is lost (coordinator crash after the
			// pre-commit round): every member is left in doubt.
			tb.dropDecisions.Store(true)
			commit, err := (acp.ThreePC{}).Commit(context.Background(), tb, log, opts, req, nil)
			if err != nil || !commit {
				b.Fatalf("commit = %v, %v", commit, err)
			}
			tb.dropDecisions.Store(false)
			// The coordinator stays down; a surviving member terminates.
			tb.down[req.Coordinator].Store(true)
			if !tb.participants[tb.sites[1]].Resolve(context.Background(), tb, req.Tx) {
				b.Fatal("quorum termination failed")
			}
			tb.down[req.Coordinator].Store(false)
			// Drain the remaining members so per-iteration state is flat.
			for _, s := range tb.sites {
				tb.participants[s].Resolve(context.Background(), tb, req.Tx)
			}
		}
	})
}

// BenchmarkNetBatching measures the coalescing TCP sender: parallel pings
// between two peers over a real loopback socket. batch=1 flushes one
// buffered write (≈ one syscall) per envelope — the pre-coalescing design;
// batch=128 lets the writer goroutine drain its whole queue into
// multi-envelope frames; codec=gob is batch=128 with both sides pinned to
// the gob body codec (the net_codec ablation — its ns/op against batch=128
// is the end-to-end transport win of the negotiated binary codec); legacy
// coalesces writes but speaks the original per-envelope gob framing with
// no slice dispatch. env/flush is the measured envelopes-per-write-syscall
// ratio.
func BenchmarkNetBatching(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts tcpnet.Options
	}{
		{"batch=1", tcpnet.Options{MaxBatch: 1}},
		{"batch=128", tcpnet.Options{}},
		{"codec=gob", tcpnet.Options{Codec: "gob"}},
		{"legacy", tcpnet.Options{LegacyFraming: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			net := tcpnet.NewWithOptions(map[model.SiteID]string{}, mode.opts)
			srv, err := wire.NewPeer(net, "S1",
				func(model.SiteID, trace.ID, wire.MsgKind, wire.Payload) (wire.MsgKind, wire.Body, error) {
					return wire.KindOK, &wire.OKBody{}, nil
				})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			cli, err := wire.NewPeer(net, "C1", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()

			ctx := context.Background()
			forceParallelism(b, 8)
			// Coalescing needs concurrent outstanding calls: closed-loop
			// clients are synchronous, so parallelism is the batch the
			// writer goroutine can actually drain per flush.
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					var resp wire.OKBody
					if err := cli.Call(ctx, "S1", wire.KindPing, &wire.PingReq{}, &resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if st := net.NetStats(); st.SentFlushes > 0 {
				b.ReportMetric(float64(st.SentEnvelopes)/float64(st.SentFlushes), "env/flush")
				b.ReportMetric(float64(st.SentBytes)/float64(st.SentFlushes), "B/flush")
			}
		})
	}
}

// BenchmarkWireCodec prices one body encode or decode per message-body
// class, hand-rolled binary vs per-message gob (a fresh encoder/decoder
// each call, exactly what the transport pays per envelope — gob's
// compileDec was ~54% of transport-bench CPU before the typed codec).
// Recorded in BENCH_baseline.json; CI gates the decode-side binary:gob
// ratios so the codec win cannot silently erode.
func BenchmarkWireCodec(b *testing.B) {
	tx := model.TxID{Site: "S1", Seq: 42}
	ts := model.Timestamp{Time: 7_000_000, Site: "S2"}
	classes := []struct {
		name  string
		body  wire.Body
		fresh func() wire.Body
	}{
		{"ReadCopyReq",
			&wire.ReadCopyReq{Tx: tx, TS: ts, Item: "item-x"},
			func() wire.Body { return &wire.ReadCopyReq{} }},
		{"ReadCopyResp",
			&wire.ReadCopyResp{Value: -12, Version: 3, Clock: 99, Incarnation: 4},
			func() wire.Body { return &wire.ReadCopyResp{} }},
		{"PreWriteReq",
			&wire.PreWriteReq{Tx: tx, TS: ts, Item: "item-y", Value: 1 << 40},
			func() wire.Body { return &wire.PreWriteReq{} }},
		{"PrepareReq",
			&wire.PrepareReq{
				Tx: tx, TS: ts, Coordinator: "S1",
				Writes:       []model.WriteRecord{{Item: "a", Value: 1, Version: 2}, {Item: "b", Value: -3, Version: 4}},
				Participants: []model.SiteID{"S1", "S2", "S3"},
				ThreePhase:   true, Epoch: 6,
				Voters: []model.SiteID{"S1", "S2", "S3"}, Incarnation: 2,
			},
			func() wire.Body { return &wire.PrepareReq{} }},
		{"VoteResp",
			&wire.VoteResp{Yes: true},
			func() wire.Body { return &wire.VoteResp{} }},
		{"DecisionMsg",
			&wire.DecisionMsg{Tx: tx, Commit: true},
			func() wire.Body { return &wire.DecisionMsg{} }},
		{"TermQueryResp",
			&wire.TermQueryResp{Accepted: true, EA: model.Ballot{N: 9, Site: "S3"}, State: 2, Decided: true, Commit: true},
			func() wire.Body { return &wire.TermQueryResp{} }},
		{"SubmitTxResp",
			&wire.SubmitTxResp{Outcome: model.Outcome{
				Tx: tx, Committed: true, LatencyNS: 123456,
				Reads:    map[model.ItemID]int64{"r1": 5, "r2": -6},
				HomeSite: "S1",
			}},
			func() wire.Body { return &wire.SubmitTxResp{} }},
	}
	for _, c := range classes {
		binEnc := c.body.AppendTo(nil)
		gobEnc, err := wire.Marshal(c.body)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/encode-binary", func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = c.body.AppendTo(buf[:0])
			}
		})
		b.Run(c.name+"/encode-gob", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.Marshal(c.body); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/decode-binary", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.fresh().DecodeFrom(binEnc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/decode-gob", func(b *testing.B) {
			pay := wire.Payload{Codec: wire.CodecGob, Bytes: gobEnc}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := pay.Decode(c.fresh()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
